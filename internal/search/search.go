package search

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/engine"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/sim"
	"gcs/internal/trace"
)

// Objective selects the quantity the search maximizes.
type Objective int

// Objectives.
const (
	// ObjectiveGlobalSkew maximizes the worst |L_i − L_j| over all pairs.
	ObjectiveGlobalSkew Objective = iota
	// ObjectiveLocalSkew maximizes the worst |L_i − L_j| over distance-1
	// pairs.
	ObjectiveLocalSkew
	// ObjectiveGradientMargin maximizes max over pairs of
	// |L_i − L_j| − f(d(i,j)): positive values are gradient violations.
	ObjectiveGradientMargin
)

// String returns the objective's flag-style name.
func (o Objective) String() string {
	switch o {
	case ObjectiveGlobalSkew:
		return "global"
	case ObjectiveLocalSkew:
		return "local"
	case ObjectiveGradientMargin:
		return "margin"
	default:
		return fmt.Sprintf("objective(%d)", int(o))
	}
}

// ParseObjective parses an objective name as used by the CLIs.
func ParseObjective(s string) (Objective, error) {
	switch strings.ToLower(s) {
	case "global":
		return ObjectiveGlobalSkew, nil
	case "local":
		return ObjectiveLocalSkew, nil
	case "margin":
		return ObjectiveGradientMargin, nil
	default:
		return 0, fmt.Errorf("search: unknown objective %q (want global | local | margin)", s)
	}
}

// Seed is an initial candidate injected into the search beam next to the
// unmutated base: a replayable delay script and, optionally, full hardware
// schedules. Seeds are how the certified lower-bound constructions enter the
// search (see internal/lowerbound AdversarySeed exporters): seeded with the
// Shift construction's β execution, the hunter starts at — not below — the
// proven bound, and mutates outward from there.
type Seed struct {
	// Name labels the seed in error messages.
	Name string
	// Script is the seed's delay script, replayed over the Base tail.
	Script map[trace.MsgKey]rat.Rat
	// Schedules, when non-nil, replaces the base hardware schedules for this
	// candidate (length must equal the node count). The constructions' rate
	// surgery (e.g. the Add Skew γ speed-up) arrives through this field.
	Schedules []*clock.Schedule
}

// Options configures a worst-case search.
type Options struct {
	Net      *network.Network
	Protocol sim.Protocol
	Duration rat.Rat
	Rho      rat.Rat // drift bound ρ; rate mutations stay within [1−ρ, 1+ρ]

	// Schedules are the base hardware schedules (default: all constant 1).
	// Rate mutations replace one node's schedule with a constant-rate one.
	Schedules []*clock.Schedule

	// Base seeds the search and serves as the tail adversary for decisions
	// beyond every candidate script. Default: Midpoint().
	//
	// A stateful Base (an adaptive adversary observing the run it schedules)
	// is supported when it implements engine.StatefulAdversary: every
	// evaluation then runs against an independent clone of its initial
	// state, and prefix-cached forks clone the trunk tail's state at the
	// fork point, so results stay byte-identical to full re-simulation. A
	// Base that observes the run without being cloneable cannot be forked
	// or replicated: the search degrades to serial full re-simulation
	// (DisablePrefixCache, Workers = 1) with the single Base instance
	// carried through every evaluation in candidate order — deterministic
	// in Options, but candidate values then depend on the evaluations
	// before them and Result.Script is not independently replayable
	// against a fresh adversary. Result.Notes says so; prefer a cloneable
	// Base.
	Base engine.Adversary

	// Seeds are additional initial candidates (certified constructions,
	// previous winners) evaluated alongside the base in round zero.
	Seeds []Seed

	Objective Objective
	// Gradient is the bound f for ObjectiveGradientMargin (required there,
	// ignored otherwise).
	Gradient core.GradientFunc

	// Rounds bounds the greedy rounds (each round composes one more mutation
	// on top of the beam). Default 4.
	Rounds int
	// Beam is the number of best candidates expanded each round. Default 2.
	Beam int
	// DelayMutations caps how many of a candidate's decisions are mutated
	// per round, sampled evenly across the decision log so late decisions
	// are reachable. Default 16.
	DelayMutations int
	// MutateTail, when nonzero (in (0, 1]), restricts delay-mutation
	// sampling to the final MutateTail fraction of each parent's decision
	// log. This is the shape of the paper's surgery — perturb the end of the
	// run, keep the prefix indistinguishable — and it is what makes
	// prefix-cached evaluation pay: the shared prefix grows with 1−MutateTail.
	// Zero (the default) samples the whole log.
	MutateTail rat.Rat
	// RateWindows, when > 0, adds windowed rate-schedule mutations to the
	// move set: the run is split into RateWindows equal real-time windows,
	// and each candidate applies clock.ModifyWindow to one node over one
	// window, pinning its rate to 1−ρ or 1+ρ there (the Bounded Increase
	// lemma's surgery shape). Zero disables them. Requires Rho > 0: with
	// ρ = 0 both pins collapse to rate 1 and the move set would silently be
	// empty, so normalize rejects the combination. Window mutants share the
	// parent's execution prefix: the mutated schedule agrees with the
	// parent's before the window starts, so evaluation forks the shared
	// trunk there and swaps the schedule in (Engine.SwapSchedule) instead of
	// re-simulating from time zero.
	RateWindows int
	// Workers bounds the evaluation pool. Default GOMAXPROCS.
	Workers int
	// DisableRateMutations restricts the search to delay choices only
	// (whole-run flips and windowed surgery alike).
	DisableRateMutations bool
	// DisablePrefixCache evaluates every candidate from scratch instead of
	// forking shared script prefixes. Results are byte-identical either way;
	// the flag exists for benchmarking and for the equivalence tests.
	DisablePrefixCache bool

	// Metrics, when non-nil, receives campaign-level accounting (generations
	// merged, candidates evaluated, engine steps, prefix-cache savings) as
	// shard results are absorbed. EngineMetrics, when non-nil, instruments
	// every engine this search constructs (trunks, forks, from-scratch
	// evaluations) so its step counters advance live during evaluation, not
	// just at merge time. Neither affects the search outcome in any way.
	Metrics       *Metrics
	EngineMetrics *engine.Metrics

	// serialEval forces in-order, single-threaded from-scratch evaluation.
	// normalize sets it when Base is stateful but not cloneable: the one
	// shared Base instance must then see candidate runs one at a time, in a
	// deterministic order.
	serialEval bool
}

// Result is the outcome of a search: the best adversary found, as a
// replayable script plus rate overrides, with the objective values that
// certify it. Identical Options produce identical Results regardless of
// Workers or GOMAXPROCS.
type Result struct {
	Objective Objective
	// Baseline is the objective value of the unmutated base candidate.
	Baseline rat.Rat
	// Best is the searched worst-case objective value (≥ Baseline).
	Best rat.Rat
	// BestCandidate is the winning candidate's global discovery index (0 =
	// the unmutated base). Candidate indices are assigned in enumeration
	// order, so this — like every other field except EngineSteps — is
	// identical however the evaluation was scheduled or sharded.
	BestCandidate int
	// Witness is the pair and time attaining Best (skew objectives) or the
	// pair with the worst margin (margin objective).
	Witness core.PairSkew
	// Script is the complete realized decision log of the best run: replay
	// it with ReplayAdversary (or engine.ScriptedAdversary + the base tail)
	// to reproduce the execution exactly.
	Script map[trace.MsgKey]rat.Rat
	// Rates holds per-node constant-rate overrides; a zero Rat means the
	// node keeps its base schedule. When the winner carries windowed surgery
	// or seed schedules that no constant rate describes, the corresponding
	// entries are zero and Schedules is authoritative.
	Rates []rat.Rat
	// Schedules are the effective hardware schedules of the best run (base
	// schedules, constant-rate overrides, windowed surgery, and seed
	// schedules all applied). Replaying Script under Schedules reproduces
	// the winning execution exactly.
	Schedules []*clock.Schedule
	// Rounds is the number of mutation rounds executed, Evaluated the total
	// number of candidate simulations.
	Rounds    int
	Evaluated int
	// EngineSteps counts the engine events actually dispatched across the
	// whole search — shared prefixes once, plus the trunk replays that
	// position the forks. CandidateSteps counts what the same evaluations
	// would have dispatched re-simulated from scratch (the sum of every
	// candidate's full execution length); the ratio CandidateSteps /
	// EngineSteps is the prefix-cache speedup.
	EngineSteps    uint64
	CandidateSteps uint64
	// Notes records evaluation-strategy degradations the search applied —
	// currently the serial from-scratch fallback for a stateful,
	// non-cloneable Base — so a caller (or a log reader) can see why a run
	// evaluated slower than configured.
	Notes []string
}

// StepsPerCandidate returns the engine events dispatched per evaluated
// candidate, and ResimPerCandidate what from-scratch re-simulation would
// have dispatched; SavedFraction is 1 − Steps/Resim, the prefix-cache
// saving. The CLIs and E13 report exactly these.
func (r *Result) StepsPerCandidate() float64 {
	return float64(r.EngineSteps) / float64(r.Evaluated)
}

// ResimPerCandidate returns the from-scratch engine events per candidate.
func (r *Result) ResimPerCandidate() float64 {
	return float64(r.CandidateSteps) / float64(r.Evaluated)
}

// SavedFraction returns the fraction of engine events prefix caching saved.
func (r *Result) SavedFraction() float64 {
	return 1 - float64(r.EngineSteps)/float64(r.CandidateSteps)
}

// ReplayAdversary returns the adversary reproducing the best execution found
// (the full realized script over the base tail).
func (r *Result) ReplayAdversary(base engine.Adversary) engine.ScriptedAdversary {
	return engine.ScriptedAdversary{Delays: r.Script, Fallback: base}
}

// ReplaySchedules returns the hardware schedules of the best execution:
// base schedules with the searched constant-rate overrides applied. When the
// winner carries windowed or seeded schedules, use the Schedules field
// instead — it is always exact.
func (r *Result) ReplaySchedules(base []*clock.Schedule) []*clock.Schedule {
	out := make([]*clock.Schedule, len(base))
	for i := range base {
		if i < len(r.Rates) && !r.Rates[i].IsZero() {
			out[i] = clock.Constant(r.Rates[i])
		} else {
			out[i] = base[i]
		}
	}
	return out
}

// candidate is one point of the search space: a delay script layered over
// the base tail adversary, plus per-node constant-rate overrides (zero Rat =
// base schedule) and, for seeds and windowed mutants, a full schedule
// override. id is the global discovery index, the deterministic tie-breaker.
type candidate struct {
	id     int
	script map[trace.MsgKey]rat.Rat
	rates  []rat.Rat
	scheds []*clock.Schedule // non-nil: full base-schedule override

	// Prefix lineage, set on delay and window mutants: the parent's realized
	// decision log plus the divergence point. A delay mutant diverges at its
	// first changed decision (divIdx into the parent log, divEvent its
	// dispatch-event index). A nil parent (whole-run rate mutants, seeds,
	// the base) evaluates from scratch.
	parent   *DecisionLog
	divIdx   int
	divEvent uint64

	// Rate-window lineage: the mutant equals its parent except node
	// swapNode's schedule is swapSched, which agrees with the parent's on
	// [0, divTime). scheds stays the PARENT's schedule set — the shared
	// trunk runs under it — and the fork swaps swapSched in at the first
	// event at/after divTime (Engine.SwapSchedule re-derives queued timer
	// times from their hardware targets). schedOverride materializes the
	// candidate's own set for from-scratch evaluation, dedup keys, and the
	// wire form of evaluated candidates.
	swapNode  int
	swapSched *clock.Schedule
	divTime   rat.Rat
}

// evaluation is a candidate's simulated outcome.
type evaluation struct {
	cand    candidate
	value   rat.Rat
	witness core.PairSkew
	log     *DecisionLog
	steps   uint64 // full execution length (prefix + suffix)
	cost    uint64 // events this evaluation actually dispatched (suffix only when forked)
	err     error
}

// Search hunts a skew-maximizing execution for opt.Protocol on opt.Net. See
// the package comment for the algorithm; the result is deterministic in
// Options alone.
//
// Search is the single-process driver of a Campaign: each generation is
// evaluated as one whole-pool shard. The distributed coordinator
// (internal/dist) drives the identical Campaign with the pool partitioned
// across workers; the merge is argmax with ties broken on candidate index,
// so both paths produce byte-identical Results (EngineSteps excepted — see
// the Campaign doc).
func Search(opt Options) (*Result, error) {
	c, err := NewCampaign(opt)
	if err != nil {
		return nil, err
	}
	for !c.Done() {
		sr, err := c.EvaluateRange(0, c.NumPending())
		if err != nil {
			return nil, err
		}
		if err := c.Absorb([]*ShardResult{sr}); err != nil {
			return nil, err
		}
	}
	return c.Result()
}

// fullSteps sums the full execution lengths of a batch.
func fullSteps(evals []evaluation) uint64 {
	var total uint64
	for _, ev := range evals {
		total += ev.steps
	}
	return total
}

// normalize validates opt, fills defaults, and returns notes describing any
// evaluation-strategy degradation it had to apply.
func normalize(opt *Options) ([]string, error) {
	if opt.Net == nil {
		return nil, fmt.Errorf("search: nil network")
	}
	if opt.Protocol == nil {
		return nil, fmt.Errorf("search: nil protocol")
	}
	if opt.Duration.Sign() <= 0 {
		return nil, fmt.Errorf("search: non-positive duration %s", opt.Duration)
	}
	if opt.Objective == ObjectiveGradientMargin && opt.Gradient == nil {
		return nil, fmt.Errorf("search: ObjectiveGradientMargin needs a Gradient func")
	}
	n := opt.Net.N()
	if opt.Schedules == nil {
		opt.Schedules = make([]*clock.Schedule, n)
		for i := range opt.Schedules {
			opt.Schedules[i] = clock.Constant(rat.FromInt(1))
		}
	}
	if len(opt.Schedules) != n {
		return nil, fmt.Errorf("search: %d schedules for %d nodes", len(opt.Schedules), n)
	}
	for _, s := range opt.Seeds {
		if s.Schedules != nil && len(s.Schedules) != n {
			return nil, fmt.Errorf("search: seed %q has %d schedules for %d nodes", s.Name, len(s.Schedules), n)
		}
	}
	if opt.MutateTail.Sign() < 0 || opt.MutateTail.Greater(rat.FromInt(1)) {
		return nil, fmt.Errorf("search: MutateTail %s outside [0, 1]", opt.MutateTail)
	}
	if opt.RateWindows < 0 {
		return nil, fmt.Errorf("search: negative RateWindows %d", opt.RateWindows)
	}
	if opt.RateWindows > 0 && !opt.DisableRateMutations && opt.Rho.Sign() <= 0 {
		return nil, fmt.Errorf("search: RateWindows %d with drift bound ρ=%s: windowed rate surgery pins rates to 1−ρ and 1+ρ, which under ρ <= 0 never changes a schedule, so the windows would silently produce no mutants; set Rho > 0, or RateWindows = 0 to disable windowed surgery", opt.RateWindows, opt.Rho)
	}
	if opt.Base == nil {
		opt.Base = engine.Midpoint()
	}
	if opt.Rounds <= 0 {
		opt.Rounds = 4
	}
	if opt.Beam <= 0 {
		opt.Beam = 2
	}
	if opt.DelayMutations <= 0 {
		opt.DelayMutations = 16
	}
	if opt.Workers <= 0 {
		opt.Workers = runtime.GOMAXPROCS(0)
	}
	var notes []string
	if _, ok := engine.CloneAdversaryState(opt.Base); !ok {
		// The one Base instance cannot be forked or replicated: evaluating
		// candidates concurrently would race on its state, and forking a
		// trunk would silently share it across branches. Degrade to serial
		// full re-simulation. This is deterministic in Options but weaker
		// than the cloneable path: the shared instance's state carries from
		// one candidate run into the next, so candidate values depend on
		// evaluation order and the winning script does not replay
		// independently — which the note states outright.
		opt.DisablePrefixCache = true
		opt.Workers = 1
		opt.serialEval = true
		notes = append(notes, fmt.Sprintf(
			"base adversary %T is stateful but not cloneable (observes the run without implementing engine.StatefulAdversary): prefix caching and parallel evaluation disabled; candidates re-simulated serially with the one shared adversary instance, whose state carries across evaluations in candidate order — deterministic, but Script/Best are not independently replayable; implement CloneAdversary for exact semantics", opt.Base))
	}
	return notes, nil
}

// baseTail returns the tail adversary one evaluation should run against: an
// independent clone of the Base's initial state when the Base is stateful,
// the Base itself when stateless. On the serial fallback path (stateful,
// not cloneable) the shared instance is returned — evaluations are then
// strictly sequential.
func baseTail(opt Options) engine.Adversary {
	if tail, ok := engine.CloneAdversaryState(opt.Base); ok {
		return tail
	}
	return opt.Base
}

// effectiveScheds materializes the hardware schedules a candidate runs
// under: its full override (seeds, windowed mutants — with the window
// mutant's swapped-in schedule applied) or the base schedules, with
// constant-rate overrides applied on top.
func effectiveScheds(opt Options, cand candidate) []*clock.Schedule {
	return applyRates(opt, schedOverride(cand), cand.rates)
}

// trunkScheds materializes the schedules the shared trunk runs under:
// effectiveScheds without the rate-window swap. The trunk replays the
// parent's execution, and a window mutant's parent ran the un-swapped set;
// for every other candidate the two are identical.
func trunkScheds(opt Options, cand candidate) []*clock.Schedule {
	return applyRates(opt, cand.scheds, cand.rates)
}

// applyRates lays per-node constant-rate overrides over a schedule override
// (or the base schedules when override is nil).
func applyRates(opt Options, override []*clock.Schedule, rates []rat.Rat) []*clock.Schedule {
	base := opt.Schedules
	if override != nil {
		base = override
	}
	out := make([]*clock.Schedule, len(base))
	for i, s := range base {
		if i < len(rates) && !rates[i].IsZero() {
			out[i] = clock.Constant(rates[i])
		} else {
			out[i] = s
		}
	}
	return out
}

// schedOverride returns the candidate's own full schedule override — its
// scheds with the rate-window swap applied — or nil when it has neither.
// This is the candidate's identity (dedup keys, wire encoding of evaluated
// candidates) and what a from-scratch evaluation runs under.
func schedOverride(c candidate) []*clock.Schedule {
	if c.swapSched == nil {
		return c.scheds
	}
	out := append([]*clock.Schedule(nil), c.scheds...)
	out[c.swapNode] = c.swapSched
	return out
}

// delaySnaps are the candidate delay fractions of the bound: the extremes
// and the midpoint the constructions use.
var delaySnaps = []rat.Rat{{}, rat.MustFrac(1, 2), rat.FromInt(1)}

// mutations enumerates the deterministic single-step edits of a parent
// candidate: per-node whole-run rate flips within ±ρ, windowed rate surgery
// (when enabled), then per-decision delay snaps over an even sample of the
// parent's realized decision log (optionally restricted to its tail). Delay
// mutants and window mutants carry prefix lineage (a window mutant's
// schedule agrees with its parent's before the window, so everything before
// it is shared execution); whole-run rate flips change clocks from time zero
// and evaluate from scratch.
func mutations(opt Options, parent evaluation) []candidate {
	var out []candidate

	// Rate-change candidates never edit their script, so they can share one
	// copy of the parent's realized decisions (read-only during replay).
	var shared map[trace.MsgKey]rat.Rat
	if !opt.DisableRateMutations {
		shared = parent.log.Script()
		one := rat.FromInt(1)
		rateChoices := []rat.Rat{one.Sub(opt.Rho), one, one.Add(opt.Rho)}
		for node := 0; node < opt.Net.N(); node++ {
			cur := effectiveRate(opt, parent.cand, node)
			for _, r := range rateChoices {
				if r.Sign() <= 0 || (cur != nil && cur.Equal(r)) {
					continue
				}
				rates := append([]rat.Rat(nil), parent.cand.rates...)
				rates[node] = r
				out = append(out, candidate{script: shared, rates: rates, scheds: parent.cand.scheds})
			}
		}
		out = append(out, windowMutations(opt, parent, shared)...)
	}

	decs := parent.log.Decisions()
	for _, idx := range sampleTail(len(decs), opt.DelayMutations, opt.MutateTail) {
		d := decs[idx]
		for _, frac := range delaySnaps {
			v := frac.Mul(d.Bound)
			if v.Equal(d.Delay) {
				continue
			}
			script := parent.log.Script()
			script[d.Key] = v
			out = append(out, candidate{
				script: script,
				rates:  parent.cand.rates,
				scheds: parent.cand.scheds,
				parent: parent.log,
				divIdx: idx, divEvent: d.Event,
			})
		}
	}
	return out
}

// windowMutations enumerates the windowed rate surgery: one node's rate
// pinned to 1−ρ or 1+ρ over one of RateWindows equal slices of the run,
// original schedule elsewhere — the Bounded Increase lemma's ModifyWindow
// surgery as a search move. The resulting schedules rarely stay constant, so
// these candidates drop their constant-rate bookkeeping and carry the full
// (parent) schedule set plus the swap. Because ModifyWindow leaves [0, from)
// untouched, the mutant shares the parent's execution prefix up to the
// window start: the candidate carries prefix lineage and the trunk
// scheduler forks it there, swapping the schedule into the fork.
func windowMutations(opt Options, parent evaluation, shared map[trace.MsgKey]rat.Rat) []candidate {
	if opt.RateWindows <= 0 || opt.Rho.Sign() <= 0 {
		return nil
	}
	parentScheds := effectiveScheds(opt, parent.cand)
	one := rat.FromInt(1)
	pins := []rat.Rat{one.Sub(opt.Rho), one.Add(opt.Rho)}
	w := int64(opt.RateWindows)
	var out []candidate
	for node := 0; node < opt.Net.N(); node++ {
		for win := int64(0); win < w; win++ {
			from := opt.Duration.Mul(rat.MustFrac(win, w))
			to := opt.Duration.Mul(rat.MustFrac(win+1, w))
			for _, r := range pins {
				if r.Sign() <= 0 {
					continue
				}
				pinned := r
				ns, err := parentScheds[node].ModifyWindow(from, to, func(rat.Rat) rat.Rat { return pinned })
				if err != nil || schedEqual(ns, parentScheds[node]) {
					continue
				}
				out = append(out, candidate{
					script:    shared,
					rates:     make([]rat.Rat, opt.Net.N()),
					scheds:    parentScheds,
					parent:    parent.log,
					swapNode:  node,
					swapSched: ns,
					divTime:   from,
				})
			}
		}
	}
	return out
}

// schedEqual reports whether two schedules have identical rate segments.
func schedEqual(a, b *clock.Schedule) bool {
	ra, rb := a.Rates(), b.Rates()
	if len(ra) != len(rb) {
		return false
	}
	for i := range ra {
		if !ra[i].At.Equal(rb[i].At) || !ra[i].Rate.Equal(rb[i].Rate) {
			return false
		}
	}
	return true
}

// effectiveRate returns the constant rate node runs at under cand, or nil
// when its effective schedule is not constant (then every flip is a real
// change).
func effectiveRate(opt Options, cand candidate, node int) *rat.Rat {
	if !cand.rates[node].IsZero() {
		r := cand.rates[node]
		return &r
	}
	base := opt.Schedules
	if s := schedOverride(cand); s != nil {
		base = s
	}
	segs := base[node].Rates()
	if len(segs) == 1 {
		r := segs[0].Rate
		return &r
	}
	return nil
}

// sampleTail samples up to k indices from the final `tail` fraction of
// [0, n): the whole range when tail is zero (or one), matching sampleIndices
// exactly in that case.
func sampleTail(n, k int, tail rat.Rat) []int {
	if tail.Sign() <= 0 || tail.GreaterEq(rat.FromInt(1)) {
		return sampleIndices(n, k)
	}
	span := int(tail.Mul(rat.FromInt(int64(n))).Floor())
	if span < 1 {
		span = 1
	}
	if span > n {
		span = n
	}
	start := n - span
	idxs := sampleIndices(span, k)
	for i := range idxs {
		idxs[i] += start
	}
	return idxs
}

// sampleIndices returns up to k indices spread evenly across [0, n), always
// including the first and last when possible, in increasing order.
func sampleIndices(n, k int) []int {
	if n <= 0 || k <= 0 {
		return nil
	}
	if n <= k {
		out := make([]int, n)
		for i := range out {
			out[i] = i
		}
		return out
	}
	if k == 1 {
		return []int{0}
	}
	out := make([]int, 0, k)
	last := -1
	for i := 0; i < k; i++ {
		idx := i * (n - 1) / (k - 1)
		if idx != last {
			out = append(out, idx)
			last = idx
		}
	}
	return out
}

// key canonicalizes a candidate for deduplication: rates plus sorted script
// entries, plus the full schedule override when one is present.
func key(c candidate) string {
	var b strings.Builder
	for i, r := range c.rates {
		fmt.Fprintf(&b, "r%d=%s;", i, r.Key())
	}
	entries := make([]string, 0, len(c.script))
	for k, v := range c.script {
		entries = append(entries, fmt.Sprintf("%d>%d#%d=%s", k.From, k.To, k.Seq, v.Key()))
	}
	sort.Strings(entries)
	b.WriteString(strings.Join(entries, ";"))
	if scheds := schedOverride(c); scheds != nil {
		for i, s := range scheds {
			fmt.Fprintf(&b, ";S%d=", i)
			for _, seg := range s.Rates() {
				fmt.Fprintf(&b, "%s@%s,", seg.Rate.Key(), seg.At.Key())
			}
		}
	}
	return b.String()
}

// objectiveValue reads the configured objective off a flushed tracker.
func objectiveValue(opt Options, skew *core.SkewTracker) (rat.Rat, core.PairSkew) {
	switch opt.Objective {
	case ObjectiveLocalSkew:
		l := skew.Local()
		return l.Skew, l
	case ObjectiveGradientMargin:
		var worst core.PairSkew
		var margin rat.Rat
		first := true
		opt.Net.Pairs(func(i, j int) {
			p := skew.Pair(i, j)
			p.Allowed = opt.Gradient(p.Dist)
			m := p.Skew.Sub(p.Allowed)
			if first || m.Greater(margin) {
				margin, worst, first = m, p, false
			}
		})
		return margin, worst
	default:
		g := skew.Global()
		return g.Skew, g
	}
}

// reduce sorts the pool by (value desc, discovery id asc) and keeps the top
// `beam` entries. The id tie-break makes the selection — and therefore the
// whole search — independent of evaluation timing.
func reduce(pool []evaluation, beam int) []evaluation {
	sort.Slice(pool, func(a, b int) bool {
		if c := pool[a].value.Cmp(pool[b].value); c != 0 {
			return c > 0
		}
		return pool[a].cand.id < pool[b].cand.id
	})
	if len(pool) > beam {
		pool = pool[:beam]
	}
	return pool
}
