package search

import (
	"runtime"
	"strings"
	"testing"

	"gcs/internal/algorithms"
	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/engine"
	"gcs/internal/lowerbound"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

func ri(n int64) rat.Rat    { return rat.FromInt(n) }
func rf(n, d int64) rat.Rat { return rat.MustFrac(n, d) }

func lineOpts(t *testing.T, n int, workers int) Options {
	t.Helper()
	net, err := network.Line(n)
	if err != nil {
		t.Fatal(err)
	}
	return Options{
		Net:      net,
		Protocol: algorithms.Gradient(algorithms.DefaultGradientParams()),
		Duration: ri(8),
		Rho:      rf(1, 2),
		Rounds:   3,
		Beam:     2,

		DelayMutations: 6,
		Workers:        workers,
	}
}

// resultsEqual compares two search results field by field with exact
// rational equality (reflect.DeepEqual would be too strict: equal rationals
// can differ in internal representation).
func resultsEqual(t *testing.T, a, b *Result) {
	t.Helper()
	if a.Objective != b.Objective {
		t.Fatalf("objective %v vs %v", a.Objective, b.Objective)
	}
	if !a.Best.Equal(b.Best) || !a.Baseline.Equal(b.Baseline) {
		t.Fatalf("values differ: best %s vs %s, baseline %s vs %s", a.Best, b.Best, a.Baseline, b.Baseline)
	}
	if a.Rounds != b.Rounds || a.Evaluated != b.Evaluated {
		t.Fatalf("rounds/evaluated differ: %d/%d vs %d/%d", a.Rounds, a.Evaluated, b.Rounds, b.Evaluated)
	}
	if a.Witness.I != b.Witness.I || a.Witness.J != b.Witness.J ||
		!a.Witness.Skew.Equal(b.Witness.Skew) || !a.Witness.At.Equal(b.Witness.At) {
		t.Fatalf("witness differs: %+v vs %+v", a.Witness, b.Witness)
	}
	if len(a.Script) != len(b.Script) {
		t.Fatalf("script sizes differ: %d vs %d", len(a.Script), len(b.Script))
	}
	for k, v := range a.Script {
		bv, ok := b.Script[k]
		if !ok || !v.Equal(bv) {
			t.Fatalf("script entry %v differs: %s vs %s (present=%v)", k, v, bv, ok)
		}
	}
	if len(a.Rates) != len(b.Rates) {
		t.Fatalf("rates lengths differ: %d vs %d", len(a.Rates), len(b.Rates))
	}
	for i := range a.Rates {
		if !a.Rates[i].Equal(b.Rates[i]) {
			t.Fatalf("rate %d differs: %s vs %s", i, a.Rates[i], b.Rates[i])
		}
	}
	if a.BestCandidate != b.BestCandidate {
		t.Fatalf("best candidate differs: %d vs %d", a.BestCandidate, b.BestCandidate)
	}
	if a.CandidateSteps != b.CandidateSteps {
		t.Fatalf("candidate steps differ: %d vs %d", a.CandidateSteps, b.CandidateSteps)
	}
	if len(a.Schedules) != len(b.Schedules) {
		t.Fatalf("schedule counts differ: %d vs %d", len(a.Schedules), len(b.Schedules))
	}
	for i := range a.Schedules {
		sa, sb := a.Schedules[i].Rates(), b.Schedules[i].Rates()
		if len(sa) != len(sb) {
			t.Fatalf("schedule %d has %d vs %d segments", i, len(sa), len(sb))
		}
		for k := range sa {
			if !sa[k].At.Equal(sb[k].At) || !sa[k].Rate.Equal(sb[k].Rate) {
				t.Fatalf("schedule %d segment %d differs: %s@%s vs %s@%s",
					i, k, sa[k].Rate, sa[k].At, sb[k].Rate, sb[k].At)
			}
		}
	}
}

// TestSearchDeterministicAcrossWorkers: identical Result for a serial
// evaluation, a maximally parallel one, and GOMAXPROCS=1 vs GOMAXPROCS=N —
// the acceptance bar for the parallel reduction.
func TestSearchDeterministicAcrossWorkers(t *testing.T) {
	serial, err := Search(lineOpts(t, 5, 1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Search(lineOpts(t, 5, 8))
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, serial, parallel)
	if serial.EngineSteps != parallel.EngineSteps || serial.CandidateSteps != parallel.CandidateSteps {
		t.Fatalf("step accounting differs across workers: %d/%d vs %d/%d",
			serial.EngineSteps, serial.CandidateSteps, parallel.EngineSteps, parallel.CandidateSteps)
	}

	prev := runtime.GOMAXPROCS(1)
	single, err := Search(lineOpts(t, 5, 8))
	runtime.GOMAXPROCS(prev)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, serial, single)
}

// TestPrefixCacheMatchesFullResim: the tentpole equivalence — the
// prefix-tree evaluator must return byte-identical Results (Best, Witness,
// Script, Rates, plus the round and evaluation counts) to evaluating every
// candidate from scratch, across topologies, protocols, worker counts, and
// the extended move set; and it must actually dispatch fewer engine events.
func TestPrefixCacheMatchesFullResim(t *testing.T) {
	ring, err := network.Ring(5)
	if err != nil {
		t.Fatal(err)
	}
	two, err := network.TwoNode(ri(4))
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		opt  Options
	}{
		{"gradient-line", lineOpts(t, 5, 4)},
		{"gradient-line-serial", lineOpts(t, 5, 1)},
		{"maxgossip-ring", Options{
			Net: ring, Protocol: algorithms.MaxGossip(ri(1)), Duration: ri(8),
			Rho: rf(1, 2), Rounds: 3, Beam: 2, DelayMutations: 6, Workers: 4,
		}},
		{"llw-twonode-tail", Options{
			Net: two, Protocol: algorithms.LLW(algorithms.DefaultLLWParams()), Duration: ri(8),
			Rho: rf(1, 2), Rounds: 3, Beam: 2, DelayMutations: 6, Workers: 4,
			MutateTail: rf(1, 2),
		}},
		{"gradient-line-windows", func() Options {
			o := lineOpts(t, 4, 4)
			o.RateWindows = 2
			return o
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cached, err := Search(tc.opt)
			if err != nil {
				t.Fatal(err)
			}
			full := tc.opt
			full.DisablePrefixCache = true
			scratch, err := Search(full)
			if err != nil {
				t.Fatal(err)
			}
			resultsEqual(t, cached, scratch)
			if cached.CandidateSteps != scratch.CandidateSteps {
				t.Fatalf("candidate steps differ: cached %d vs scratch %d", cached.CandidateSteps, scratch.CandidateSteps)
			}
			if scratch.EngineSteps != scratch.CandidateSteps {
				t.Fatalf("full resim dispatched %d events but candidates total %d; accounting broken",
					scratch.EngineSteps, scratch.CandidateSteps)
			}
			if cached.EngineSteps >= scratch.EngineSteps {
				t.Fatalf("prefix cache dispatched %d events, full resim %d; no sharing happened",
					cached.EngineSteps, scratch.EngineSteps)
			}
		})
	}
}

// TestRateMutantPrefixCacheMatchesFullResim: the schedule-swap tentpole —
// rate-window mutants evaluated by forking the shared trunk at the first
// event at/after their mutated window's start and swapping the schedule into
// the fork must return byte-identical Results to evaluating every candidate
// from scratch, for a plain and a stateful base tail and on both arithmetic
// lanes, while dispatching strictly fewer engine events.
func TestRateMutantPrefixCacheMatchesFullResim(t *testing.T) {
	mk := func(stateful bool) Options {
		opt := lineOpts(t, 4, 4)
		opt.RateWindows = 2
		if stateful {
			opt.Base = adaptiveBase(t, opt.Net, opt.Duration)
		}
		return opt
	}
	lanes := []struct {
		name string
		lane engine.Lane
	}{{"auto", engine.LaneAuto}, {"rat", engine.LaneRat}}
	bases := []struct {
		name     string
		stateful bool
	}{{"midpoint", false}, {"adaptive", true}}
	for _, ln := range lanes {
		for _, bs := range bases {
			t.Run(ln.name+"/"+bs.name, func(t *testing.T) {
				engine.SetDefaultLane(ln.lane)
				defer engine.SetDefaultLane(engine.LaneAuto)
				cached, err := Search(mk(bs.stateful))
				if err != nil {
					t.Fatal(err)
				}
				full := mk(bs.stateful)
				full.DisablePrefixCache = true
				scratch, err := Search(full)
				if err != nil {
					t.Fatal(err)
				}
				resultsEqual(t, cached, scratch)
				if scratch.EngineSteps != scratch.CandidateSteps {
					t.Fatalf("full resim dispatched %d events but candidates total %d",
						scratch.EngineSteps, scratch.CandidateSteps)
				}
				if cached.EngineSteps >= scratch.EngineSteps {
					t.Fatalf("window-mutant sharing saved nothing: cached %d vs scratch %d",
						cached.EngineSteps, scratch.EngineSteps)
				}
			})
		}
	}
}

// TestSearchSeeded: a seeded search must start at, not below, the seed's
// own objective value, and seeds must survive validation.
func TestSearchSeeded(t *testing.T) {
	opt := lineOpts(t, 4, 4)
	plain, err := Search(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Seed the next search with the previous winner: the new Best can only
	// be ≥ the seeded value, even with a crippled mutation budget.
	seeded := opt
	seeded.Rounds = 1
	seeded.DelayMutations = 1
	seeded.Seeds = []Seed{{
		Name:      "previous-winner",
		Script:    plain.Script,
		Schedules: plain.Schedules,
	}}
	res, err := Search(seeded)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Less(plain.Best) {
		t.Fatalf("seeded search Best %s below its seed's value %s", res.Best, plain.Best)
	}

	bad := opt
	bad.Seeds = []Seed{{Name: "short", Schedules: []*clock.Schedule{clock.Constant(ri(1))}}}
	if _, err := Search(bad); err == nil || !strings.Contains(err.Error(), "schedules") {
		t.Fatalf("seed with wrong schedule count accepted: %v", err)
	}
}

// TestSearchWindowMutations: with windowed rate surgery enabled the winner
// may carry non-constant schedules; Result.Schedules must replay to exactly
// the reported objective value.
func TestSearchWindowMutations(t *testing.T) {
	opt := lineOpts(t, 4, 4)
	opt.RateWindows = 2
	res, err := Search(opt)
	if err != nil {
		t.Fatal(err)
	}
	plain := lineOpts(t, 4, 4)
	plainRes, err := Search(plain)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best.Less(plainRes.Baseline) {
		t.Fatalf("windowed search Best %s below baseline %s", res.Best, plainRes.Baseline)
	}
	replayToBest(t, opt, res)
}

// replayToBest drives a fresh engine under the Result's exact schedules and
// script and demands the reported objective value.
func replayToBest(t *testing.T, opt Options, res *Result) {
	t.Helper()
	skew, err := core.NewSkewTracker(opt.Net, res.Schedules)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(opt.Net,
		engine.WithProtocol(opt.Protocol),
		engine.WithAdversary(res.ReplayAdversary(engine.Midpoint())),
		engine.WithSchedules(res.Schedules),
		engine.WithRho(opt.Rho),
		engine.WithObservers(skew),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(opt.Duration); err != nil {
		t.Fatal(err)
	}
	if g := skew.Global().Skew; !g.Equal(res.Best) {
		t.Fatalf("replay global skew %s != searched %s", g, res.Best)
	}
}

// TestSampleTail: tail sampling restricts indices to the final fraction and
// degrades to whole-log sampling at 0 and 1.
func TestSampleTail(t *testing.T) {
	whole := sampleTail(100, 5, rat.Rat{})
	if len(whole) != 5 || whole[0] != 0 || whole[4] != 99 {
		t.Fatalf("sampleTail(100,5,0) = %v, want whole-log sample", whole)
	}
	one := sampleTail(100, 5, ri(1))
	for i := range whole {
		if whole[i] != one[i] {
			t.Fatalf("sampleTail(...,1) = %v differs from whole-log %v", one, whole)
		}
	}
	half := sampleTail(100, 5, rf(1, 2))
	if len(half) != 5 || half[0] != 50 || half[4] != 99 {
		t.Fatalf("sampleTail(100,5,1/2) = %v, want 5 indices in [50,99]", half)
	}
	tiny := sampleTail(4, 8, rf(1, 100))
	if len(tiny) != 1 || tiny[0] != 3 {
		t.Fatalf("sampleTail(4,8,1/100) = %v, want just the last index", tiny)
	}
}

// TestSearchRecoversShiftBound: on the two-node network the searched
// worst-case skew must reach the certified Shift lower bound for every
// protocol in the portfolio — the adversary hunter is at least as strong as
// the paper's hand construction.
func TestSearchRecoversShiftBound(t *testing.T) {
	p := lowerbound.DefaultParams()
	d := ri(2)
	dur := p.Tau().Mul(d)
	for _, proto := range algorithms.All() {
		proto := proto
		t.Run(proto.Name(), func(t *testing.T) {
			shift, err := lowerbound.Shift(proto, d, p)
			if err != nil {
				t.Fatal(err)
			}
			net, err := network.TwoNode(d)
			if err != nil {
				t.Fatal(err)
			}
			res, err := Search(Options{
				Net: net, Protocol: proto, Duration: dur, Rho: p.Rho,
				Rounds: 4, Beam: 2, DelayMutations: 8,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Best.Less(shift.Implied) {
				t.Fatalf("searched worst case %s below certified Shift bound %s", res.Best, shift.Implied)
			}
			if res.Best.Less(res.Baseline) {
				t.Fatalf("search regressed below its own baseline: %s < %s", res.Best, res.Baseline)
			}
		})
	}
}

// TestSearchResultReplays: driving a fresh engine with the result's script
// and rate overrides must reproduce exactly the objective value the search
// reported — the Result is a self-contained adversary, not just a number.
func TestSearchResultReplays(t *testing.T) {
	opt := lineOpts(t, 4, 4)
	res, err := Search(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Best.Greater(res.Baseline) {
		t.Fatalf("expected improvement over baseline on a drift-free line, got best %s baseline %s", res.Best, res.Baseline)
	}
	base := make([]*clock.Schedule, opt.Net.N())
	for i := range base {
		base[i] = clock.Constant(ri(1))
	}
	scheds := res.ReplaySchedules(base)
	skew, err := core.NewSkewTracker(opt.Net, scheds)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(opt.Net,
		engine.WithProtocol(opt.Protocol),
		engine.WithAdversary(res.ReplayAdversary(engine.Midpoint())),
		engine.WithSchedules(scheds),
		engine.WithRho(opt.Rho),
		engine.WithObservers(skew),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(opt.Duration); err != nil {
		t.Fatal(err)
	}
	if g := skew.Global().Skew; !g.Equal(res.Best) {
		t.Fatalf("replay global skew %s != searched %s", g, res.Best)
	}
}

// TestSearchObjectives: the local and margin objectives read the right
// tracker quantities.
func TestSearchObjectives(t *testing.T) {
	opt := lineOpts(t, 4, 4)
	opt.Objective = ObjectiveLocalSkew
	local, err := Search(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !local.Witness.Dist.Equal(ri(1)) {
		t.Fatalf("local objective witness at distance %s, want 1", local.Witness.Dist)
	}

	opt.Objective = ObjectiveGradientMargin
	opt.Gradient = core.LinearGradient(ri(0), ri(1)) // f(d) = d
	margin, err := Search(opt)
	if err != nil {
		t.Fatal(err)
	}
	wantMargin := margin.Witness.Skew.Sub(margin.Witness.Allowed)
	if !margin.Best.Equal(wantMargin) {
		t.Fatalf("margin %s != witness skew-allowed %s", margin.Best, wantMargin)
	}
}

// TestSearchOptionValidation: the option errors are loud and precise.
func TestSearchOptionValidation(t *testing.T) {
	net, err := network.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	proto := algorithms.Null()
	cases := []struct {
		name string
		opt  Options
		want string
	}{
		{"nil net", Options{Protocol: proto, Duration: ri(1)}, "nil network"},
		{"nil protocol", Options{Net: net, Duration: ri(1)}, "nil protocol"},
		{"bad duration", Options{Net: net, Protocol: proto}, "duration"},
		{"margin without f", Options{Net: net, Protocol: proto, Duration: ri(1),
			Objective: ObjectiveGradientMargin}, "Gradient"},
		{"schedule count", Options{Net: net, Protocol: proto, Duration: ri(1),
			Schedules: []*clock.Schedule{clock.Constant(ri(1))}}, "schedules"},
		{"rate windows without drift", Options{Net: net, Protocol: proto, Duration: ri(1),
			RateWindows: 2}, "windowed rate surgery"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Search(tc.opt)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %v does not mention %q", err, tc.want)
			}
		})
	}
}

// TestParseObjective round-trips the CLI names.
func TestParseObjective(t *testing.T) {
	for _, o := range []Objective{ObjectiveGlobalSkew, ObjectiveLocalSkew, ObjectiveGradientMargin} {
		got, err := ParseObjective(o.String())
		if err != nil || got != o {
			t.Fatalf("round trip %v: got %v, err %v", o, got, err)
		}
	}
	if _, err := ParseObjective("chaos"); err == nil {
		t.Fatal("unknown objective should error")
	}
}

// TestSampleIndices: even coverage, endpoints included, no duplicates.
func TestSampleIndices(t *testing.T) {
	cases := []struct {
		n, k int
		want []int
	}{
		{0, 4, nil},
		{3, 0, nil},
		{3, 5, []int{0, 1, 2}},
		{5, 1, []int{0}},
		{9, 3, []int{0, 4, 8}},
	}
	for _, tc := range cases {
		got := sampleIndices(tc.n, tc.k)
		if len(got) != len(tc.want) {
			t.Fatalf("sampleIndices(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
		}
		for i := range got {
			if got[i] != tc.want[i] {
				t.Fatalf("sampleIndices(%d,%d) = %v, want %v", tc.n, tc.k, got, tc.want)
			}
		}
	}
	got := sampleIndices(100, 7)
	if len(got) != 7 || got[0] != 0 || got[len(got)-1] != 99 {
		t.Fatalf("sampleIndices(100,7) = %v: want 7 entries covering both endpoints", got)
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("sampleIndices(100,7) = %v not strictly increasing", got)
		}
	}
}

// TestDecisionLogRoundTrip: replaying a captured run's full script through a
// ScriptedAdversary with no needed fallback reproduces the identical
// decision stream, and a script prefix falls back to the tail beyond it.
func TestDecisionLogRoundTrip(t *testing.T) {
	net, err := network.Line(4)
	if err != nil {
		t.Fatal(err)
	}
	proto := algorithms.MaxGossip(ri(1))
	rho := rf(1, 2)
	dur := ri(6)
	runWith := func(adv engine.Adversary) *DecisionLog {
		t.Helper()
		log := NewDecisionLog(net)
		eng, err := engine.New(net,
			engine.WithProtocol(proto),
			engine.WithAdversary(adv),
			engine.WithRho(rho),
			engine.WithObservers(log),
		)
		if err != nil {
			t.Fatal(err)
		}
		if err := eng.RunUntil(dur); err != nil {
			t.Fatal(err)
		}
		return log
	}

	orig := runWith(engine.HashAdversary{Seed: 11, Denom: 8})
	if orig.Len() == 0 {
		t.Fatal("no decisions captured")
	}
	if got := orig.String(); !strings.Contains(got, "decisions") {
		t.Fatalf("String() = %q", got)
	}

	// Full-script replay: the fallback is never consulted (a nil Fallback
	// would fail the run), and the decision stream is identical.
	replay := runWith(engine.ScriptedAdversary{Delays: orig.Script()})
	if replay.Len() != orig.Len() {
		t.Fatalf("replay captured %d decisions, want %d", replay.Len(), orig.Len())
	}
	for i, d := range replay.Decisions() {
		o := orig.Decisions()[i]
		if d.Key != o.Key || !d.Delay.Equal(o.Delay) || !d.SendReal.Equal(o.SendReal) || !d.Bound.Equal(o.Bound) {
			t.Fatalf("decision %d differs: %+v vs %+v", i, d, o)
		}
	}

	// Prefix replay: scripted decisions replay exactly; the rest fall back
	// to the midpoint tail.
	k := orig.Len() / 2
	prefix := orig.ScriptPrefix(k)
	tail := runWith(engine.ScriptedAdversary{Delays: prefix, Fallback: engine.Midpoint()})
	half := rf(1, 2)
	for _, d := range tail.Decisions() {
		if want, ok := prefix[d.Key]; ok {
			if !d.Delay.Equal(want) {
				t.Fatalf("scripted decision %v delay %s, want %s", d.Key, d.Delay, want)
			}
		} else if !d.Delay.Equal(half.Mul(d.Bound)) {
			t.Fatalf("tail decision %v delay %s, want midpoint %s", d.Key, d.Delay, half.Mul(d.Bound))
		}
	}

	// Scripted() convenience wires the same script and tail.
	sa := orig.Scripted(engine.Midpoint())
	if len(sa.Delays) != orig.Len() {
		t.Fatalf("Scripted() carries %d delays, want %d", len(sa.Delays), orig.Len())
	}
	if sa.Fallback == nil {
		t.Fatal("Scripted() dropped the tail")
	}
}

// TestScriptExhaustionFailsRun: a script with no fallback fails the run with
// a precise error instead of panicking mid-dispatch.
func TestScriptExhaustionFailsRun(t *testing.T) {
	net, err := network.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := engine.New(net,
		engine.WithProtocol(algorithms.MaxGossip(ri(1))),
		engine.WithAdversary(engine.ScriptedAdversary{}),
		engine.WithRho(rf(1, 2)),
	)
	if err != nil {
		t.Fatal(err)
	}
	err = eng.RunUntil(ri(4))
	if err == nil || !strings.Contains(err.Error(), "no Fallback") {
		t.Fatalf("expected script-exhaustion error, got %v", err)
	}
}

func mustLog(t *testing.T, net *network.Network, recs []trace.MsgRecord) *DecisionLog {
	t.Helper()
	log := NewDecisionLog(net)
	for _, r := range recs {
		log.OnSend(r)
	}
	return log
}

// TestScriptPrefixClamps: a prefix longer than the log is the whole log.
func TestScriptPrefixClamps(t *testing.T) {
	net, err := network.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	log := mustLog(t, net, []trace.MsgRecord{
		{Key: trace.MsgKey{From: 0, To: 1, Seq: 0}, Delay: rf(1, 2)},
		{Key: trace.MsgKey{From: 1, To: 2, Seq: 0}, Delay: ri(1)},
	})
	if got := log.ScriptPrefix(10); len(got) != 2 {
		t.Fatalf("clamped prefix has %d entries, want 2", len(got))
	}
	if got := log.ScriptPrefix(1); len(got) != 1 {
		t.Fatalf("prefix(1) has %d entries, want 1", len(got))
	}
}

// TestSearchLaneEquivalence: the whole search pipeline — prefix-cached forks
// and full re-simulation alike — returns byte-identical Results whether the
// engines inside it run on the fixed-point lane (the default on these
// common-denominator workloads) or are forced onto the rat lane. Step
// accounting must match too: the lane changes arithmetic representation,
// never which events dispatch.
func TestSearchLaneEquivalence(t *testing.T) {
	auto, err := Search(lineOpts(t, 5, 4))
	if err != nil {
		t.Fatal(err)
	}

	engine.SetDefaultLane(engine.LaneRat)
	defer engine.SetDefaultLane(engine.LaneAuto)

	ratCached, err := Search(lineOpts(t, 5, 4))
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, auto, ratCached)
	if auto.EngineSteps != ratCached.EngineSteps {
		t.Fatalf("engine steps differ across lanes: %d vs %d", auto.EngineSteps, ratCached.EngineSteps)
	}

	scratchOpts := lineOpts(t, 5, 4)
	scratchOpts.DisablePrefixCache = true
	ratScratch, err := Search(scratchOpts)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, auto, ratScratch)
}
