// Campaign: the search exposed as a resumable generation state machine, the
// seam the distributed coordinator (internal/dist) shards across processes.
//
// Search runs plan → execute → merge each round: enumerate the beam's
// mutations (plan), evaluate every candidate (execute), reduce by argmax
// with ties broken on candidate index (merge). A Campaign makes those steps
// separately drivable: the caller pulls the pending generation, evaluates
// any partition of it — locally via EvaluateRange, or remotely by shipping
// the wire-form Generation to a worker that calls EvaluateShard — and feeds
// the per-shard results back through Absorb, in any order. Because the
// reduction is a strict total order (value descending, candidate index
// ascending) and every shard returns at least its own top-Beam evaluations,
// the merged outcome is byte-identical to single-pool Search for any shard
// layout, any shard count, and any arrival order; only the EngineSteps
// measurement varies (a parent prefix shared across shards replays once per
// shard instead of once overall).
//
// Wire form: Generation, Candidate, ShardResult, and CandidateEval are
// plain-data views — delay scripts as sorted ScriptEntry lists, hardware
// schedules as clock.RateSeg segments, decision logs via the DecisionLog
// JSON codec — so a coordinator and a worker that agree on Options rebuild
// identical evaluation inputs from JSON alone.
package search

import (
	"fmt"
	"sort"

	"gcs/internal/clock"
	"gcs/internal/core"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// ScriptEntry is one delay-script binding in wire form: the message identity
// and the scripted delay. EncodeScript orders entries by (From, To, Seq) so
// equal scripts encode identically.
type ScriptEntry struct {
	From  int     `json:"from"`
	To    int     `json:"to"`
	Seq   uint64  `json:"seq"`
	Delay rat.Rat `json:"delay"`
}

// EncodeScript converts a delay script into its canonical wire form, sorted
// by (From, To, Seq). A nil or empty script encodes as nil.
func EncodeScript(script map[trace.MsgKey]rat.Rat) []ScriptEntry {
	if len(script) == 0 {
		return nil
	}
	out := make([]ScriptEntry, 0, len(script))
	for k, v := range script {
		out = append(out, ScriptEntry{From: k.From, To: k.To, Seq: k.Seq, Delay: v})
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].From != out[b].From {
			return out[a].From < out[b].From
		}
		if out[a].To != out[b].To {
			return out[a].To < out[b].To
		}
		return out[a].Seq < out[b].Seq
	})
	return out
}

// DecodeScript rebuilds a delay script from its wire form. A nil or empty
// entry list decodes to nil, matching EncodeScript.
func DecodeScript(entries []ScriptEntry) map[trace.MsgKey]rat.Rat {
	if len(entries) == 0 {
		return nil
	}
	out := make(map[trace.MsgKey]rat.Rat, len(entries))
	for _, e := range entries {
		out[trace.MsgKey{From: e.From, To: e.To, Seq: e.Seq}] = e.Delay
	}
	return out
}

// EncodeSchedules converts hardware schedules into their rate-segment wire
// form. nil encodes as nil (meaning: the base schedules apply).
func EncodeSchedules(scheds []*clock.Schedule) [][]clock.RateSeg {
	if scheds == nil {
		return nil
	}
	out := make([][]clock.RateSeg, len(scheds))
	for i, s := range scheds {
		out[i] = s.Rates()
	}
	return out
}

// DecodeSchedules rebuilds hardware schedules from rate segments; exact
// rational segments reconstruct the original schedules bit for bit.
func DecodeSchedules(segs [][]clock.RateSeg) ([]*clock.Schedule, error) {
	if segs == nil {
		return nil, nil
	}
	out := make([]*clock.Schedule, len(segs))
	for i, s := range segs {
		sched, err := clock.FromRates(s)
		if err != nil {
			return nil, fmt.Errorf("search: schedule %d: %w", i, err)
		}
		out[i] = sched
	}
	return out, nil
}

// Candidate is the wire-form description of one candidate of a generation:
// everything a worker needs to rebuild the internal candidate and evaluate
// it, including the prefix lineage for fork-based evaluation.
type Candidate struct {
	// ID is the global discovery index — the argmax tie-breaker.
	ID int `json:"id"`
	// Script is the candidate's delay script over the base tail.
	Script []ScriptEntry `json:"script,omitempty"`
	// Rates are per-node constant-rate overrides (zero = base schedule).
	Rates []rat.Rat `json:"rates"`
	// Schedules, when non-nil, is a full base-schedule override (seeds and
	// windowed mutants).
	Schedules [][]clock.RateSeg `json:"schedules,omitempty"`
	// Parent indexes Generation.Parents for prefix-lineage mutants (-1:
	// evaluate from scratch); DivIdx/DivEvent locate a delay mutant's first
	// diverging decision.
	Parent   int    `json:"parent"`
	DivIdx   int    `json:"div_idx,omitempty"`
	DivEvent uint64 `json:"div_event,omitempty"`
	// SwapSched, when non-empty, marks a rate-window mutant: node SwapNode's
	// schedule is replaced by SwapSched, which agrees with the parent's on
	// [0, DivTime) — the worker forks the parent's trunk at the first event
	// at/after DivTime and swaps the schedule into the fork. Note Schedules
	// above still carries the candidate's fully materialized schedule set
	// (swap applied), so evaluated candidates round-trip without lineage.
	SwapNode  int             `json:"swap_node,omitempty"`
	SwapSched []clock.RateSeg `json:"swap_sched,omitempty"`
	DivTime   rat.Rat         `json:"div_time"`
}

// Generation is one campaign round's pending work in wire form: the distinct
// parent decision logs the round's delay mutants fork from, plus every
// candidate. Candidates keep enumeration order, so a contiguous [lo, hi)
// range is a deterministic shard.
type Generation struct {
	Round      int            `json:"round"`
	Parents    []*DecisionLog `json:"parents,omitempty"`
	Candidates []Candidate    `json:"candidates"`
}

// CandidateEval is one evaluated candidate in wire form: the objective
// value, its witness, the realized decision log (the next round's mutation
// substrate and, for the winner, the replay script), and the candidate's
// schedule bookkeeping (needed to enumerate its mutations).
type CandidateEval struct {
	ID        int               `json:"id"`
	Value     rat.Rat           `json:"value"`
	Witness   core.PairSkew     `json:"witness"`
	Rates     []rat.Rat         `json:"rates"`
	Schedules [][]clock.RateSeg `json:"schedules,omitempty"`
	Log       *DecisionLog      `json:"log"`
}

// ShardResult is one shard's evaluation outcome. Top holds the shard's best
// min(Beam, evaluated) candidates by (value desc, ID asc) — plus candidate 0
// when the shard contains it, so the round-zero baseline always survives the
// merge. Dispatched counts engine events this shard actually dispatched
// (trunk replays included; shard-layout dependent), FullSteps the
// from-scratch execution lengths (shard-layout invariant). ErrID/ErrMsg
// carry the lowest-ID evaluation failure, -1 when none.
type ShardResult struct {
	Top        []CandidateEval `json:"top,omitempty"`
	Evaluated  int             `json:"evaluated"`
	Dispatched uint64          `json:"dispatched"`
	FullSteps  uint64          `json:"full_steps"`
	ErrID      int             `json:"err_id"`
	ErrMsg     string          `json:"err_msg,omitempty"`

	// err preserves the original error object on the local path so Search
	// wraps it unchanged; wire shards reconstruct from ErrMsg.
	err error
}

// shardErr returns the shard's evaluation failure as an error, preferring
// the preserved local error object.
func (sr *ShardResult) shardErr() error {
	if sr.ErrID < 0 {
		return nil
	}
	if sr.err != nil {
		return sr.err
	}
	return fmt.Errorf("%s", sr.ErrMsg)
}

// Campaign is a worst-case search driven generation by generation: the
// resumable state the distributed coordinator holds between shard
// dispatches. NewCampaign validates options and stages the initial
// generation (base + seeds); the caller then loops: evaluate the pending
// generation in any partition (EvaluateRange locally, EvaluateShard on a
// worker), Absorb the shard results, and read the merged outcome off
// Result once Done. Search is exactly this loop with one shard.
type Campaign struct {
	opt   Options
	notes []string

	pending []candidate
	round   int // 0 = initial generation (base + seeds)

	beam      []evaluation
	best      evaluation
	baseline  rat.Rat
	seen      map[string]bool
	nextID    int
	mutRounds int // mutation generations enumerated (≤ opt.Rounds)
	rounds    int // mutation generations evaluated (Result.Rounds)
	evaluated int

	engineSteps    uint64
	candidateSteps uint64

	done bool
}

// NewCampaign validates opt, fills defaults, and stages the initial
// generation: the unmutated base (candidate 0) plus every seed.
func NewCampaign(opt Options) (*Campaign, error) {
	notes, err := normalize(&opt)
	if err != nil {
		return nil, err
	}
	n := opt.Net.N()
	initial := []candidate{{id: 0, rates: make([]rat.Rat, n)}}
	for _, s := range opt.Seeds {
		initial = append(initial, candidate{
			id:     len(initial),
			script: s.Script,
			rates:  make([]rat.Rat, n),
			scheds: s.Schedules,
		})
	}
	seen := make(map[string]bool, len(initial))
	for _, c := range initial {
		seen[key(c)] = true
	}
	return &Campaign{
		opt:     opt,
		notes:   notes,
		pending: initial,
		seen:    seen,
		nextID:  len(initial),
	}, nil
}

// Done reports whether the campaign has converged (or failed): no pending
// generation remains and Result is readable.
func (c *Campaign) Done() bool { return c.done }

// Round returns the pending generation's round index (0 = base + seeds).
func (c *Campaign) Round() int { return c.round }

// NumPending returns the number of candidates awaiting evaluation.
func (c *Campaign) NumPending() int { return len(c.pending) }

// Evaluated returns the number of candidate evaluations absorbed so far.
func (c *Campaign) Evaluated() int { return c.evaluated }

// BestValue returns the best objective value merged so far (zero before the
// first Absorb).
func (c *Campaign) BestValue() rat.Rat { return c.best.value }

// Shardable reports whether the pending work may be partitioned across
// evaluators. A stateful, non-cloneable Base forces the serial fallback —
// one shared adversary instance seeing every run in candidate order — which
// no shard layout but the trivial one preserves.
func (c *Campaign) Shardable() bool { return !c.opt.serialEval }

// Generation exports the pending generation in wire form. The export is
// deterministic: parents are listed in first-reference order and candidates
// in enumeration order, so coordinator and worker agree on [lo, hi) shard
// meaning by construction.
func (c *Campaign) Generation() *Generation {
	gen := &Generation{Round: c.round, Candidates: make([]Candidate, 0, len(c.pending))}
	parentIdx := make(map[*DecisionLog]int)
	for _, cd := range c.pending {
		p := -1
		if cd.parent != nil {
			var ok bool
			p, ok = parentIdx[cd.parent]
			if !ok {
				p = len(gen.Parents)
				parentIdx[cd.parent] = p
				gen.Parents = append(gen.Parents, cd.parent)
			}
		}
		wc := Candidate{
			ID:        cd.id,
			Script:    EncodeScript(cd.script),
			Rates:     append([]rat.Rat(nil), cd.rates...),
			Schedules: EncodeSchedules(cd.scheds),
			Parent:    p,
			DivIdx:    cd.divIdx,
			DivEvent:  cd.divEvent,
		}
		if cd.swapSched != nil {
			wc.SwapNode = cd.swapNode
			wc.SwapSched = cd.swapSched.Rates()
			wc.DivTime = cd.divTime
		}
		gen.Candidates = append(gen.Candidates, wc)
	}
	return gen
}

// EvaluateRange evaluates the contiguous pending-candidate range [lo, hi)
// locally — the coordinator-side shard evaluator, and the fallback a failed
// remote shard degrades to. The range indices match the wire Generation's
// candidate order exactly.
func (c *Campaign) EvaluateRange(lo, hi int) (*ShardResult, error) {
	if lo < 0 || hi < lo || hi > len(c.pending) {
		return nil, fmt.Errorf("search: shard range [%d, %d) outside pending generation of %d", lo, hi, len(c.pending))
	}
	evals, dispatched := evalAll(c.opt, c.pending[lo:hi])
	return buildShard(c.opt, evals, dispatched), nil
}

// EvaluateShard is the worker-side evaluator: rebuild the shard's candidates
// from the wire generation and run the same prefix-cached evaluation
// EvaluateRange runs. opt must describe the same campaign the coordinator
// holds (internal/dist reconstructs it from the campaign spec); Seeds are
// ignored — the coordinator materialized them into round-zero candidates.
func EvaluateShard(opt Options, gen *Generation, lo, hi int) (*ShardResult, error) {
	if _, err := normalize(&opt); err != nil {
		return nil, err
	}
	if opt.serialEval {
		return nil, fmt.Errorf("search: base adversary %T is stateful but not cloneable; the serial fallback cannot be sharded", opt.Base)
	}
	if gen == nil {
		return nil, fmt.Errorf("search: nil generation")
	}
	if lo < 0 || hi < lo || hi > len(gen.Candidates) {
		return nil, fmt.Errorf("search: shard range [%d, %d) outside generation of %d", lo, hi, len(gen.Candidates))
	}
	cands := make([]candidate, 0, hi-lo)
	for _, wc := range gen.Candidates[lo:hi] {
		scheds, err := DecodeSchedules(wc.Schedules)
		if err != nil {
			return nil, fmt.Errorf("search: candidate %d: %w", wc.ID, err)
		}
		cd := candidate{
			id:     wc.ID,
			script: DecodeScript(wc.Script),
			rates:  append([]rat.Rat(nil), wc.Rates...),
			scheds: scheds,
		}
		if wc.Parent >= 0 {
			if wc.Parent >= len(gen.Parents) {
				return nil, fmt.Errorf("search: candidate %d references parent %d of %d", wc.ID, wc.Parent, len(gen.Parents))
			}
			cd.parent = gen.Parents[wc.Parent]
			cd.divIdx = wc.DivIdx
			cd.divEvent = wc.DivEvent
		}
		if len(wc.SwapSched) > 0 {
			ss, err := clock.FromRates(wc.SwapSched)
			if err != nil {
				return nil, fmt.Errorf("search: candidate %d swap schedule: %w", wc.ID, err)
			}
			if wc.SwapNode < 0 || wc.SwapNode >= opt.Net.N() {
				return nil, fmt.Errorf("search: candidate %d swaps schedule of invalid node %d", wc.ID, wc.SwapNode)
			}
			cd.swapNode = wc.SwapNode
			cd.swapSched = ss
			cd.divTime = wc.DivTime
		}
		cands = append(cands, cd)
	}
	evals, dispatched := evalAll(opt, cands)
	return buildShard(opt, evals, dispatched), nil
}

// buildShard condenses a batch of evaluations into the wire result: the
// shard-local top-Beam (plus candidate 0, the baseline), aggregate step
// counts, and the lowest-ID failure.
func buildShard(opt Options, evals []evaluation, dispatched uint64) *ShardResult {
	sr := &ShardResult{
		Evaluated:  len(evals),
		Dispatched: dispatched,
		FullSteps:  fullSteps(evals),
		ErrID:      -1,
	}
	ok := make([]evaluation, 0, len(evals))
	for _, ev := range evals {
		if ev.err != nil {
			if sr.ErrID < 0 || ev.cand.id < sr.ErrID {
				sr.ErrID = ev.cand.id
				sr.ErrMsg = ev.err.Error()
				sr.err = ev.err
			}
			continue
		}
		ok = append(ok, ev)
	}
	top := reduce(append([]evaluation(nil), ok...), opt.Beam)
	keepBase := false
	for _, ev := range ok {
		if ev.cand.id == 0 {
			keepBase = true
			for _, t := range top {
				if t.cand.id == 0 {
					keepBase = false
					break
				}
			}
			if keepBase {
				top = append(top, ev)
			}
			break
		}
	}
	for _, ev := range top {
		sr.Top = append(sr.Top, CandidateEval{
			ID:      ev.cand.id,
			Value:   ev.value,
			Witness: ev.witness,
			Rates:   append([]rat.Rat(nil), ev.cand.rates...),
			// Materialize the swap (schedOverride) so a beam entry decoded on
			// the coordinator carries the candidate's true schedule set — the
			// substrate its own mutations enumerate from — without lineage.
			Schedules: EncodeSchedules(schedOverride(ev.cand)),
			Log:       ev.log,
		})
	}
	return sr
}

// Absorb merges the pending generation's shard results — any partition, any
// order — and advances the campaign: round zero fixes the baseline, every
// round re-reduces the beam, and the greedy fixpoint or round budget ends
// the campaign. The shards must cover the pending generation exactly; a
// candidate evaluation failure surfaces as the same error single-pool
// Search would return.
func (c *Campaign) Absorb(results []*ShardResult) error {
	if c.done {
		return fmt.Errorf("search: campaign already finished")
	}
	covered := 0
	for _, sr := range results {
		covered += sr.Evaluated
	}
	if covered != len(c.pending) {
		return fmt.Errorf("search: shard results cover %d of %d pending candidates", covered, len(c.pending))
	}
	for _, sr := range results {
		c.engineSteps += sr.Dispatched
		c.candidateSteps += sr.FullSteps
	}
	c.evaluated += len(c.pending)
	if m := c.opt.Metrics; m != nil {
		m.Generations.Inc()
		m.Candidates.Add(uint64(len(c.pending)))
		for _, sr := range results {
			m.absorbShard(sr)
		}
	}

	if err := c.firstError(results); err != nil {
		c.done = true
		return err
	}

	pool := append([]evaluation(nil), c.beam...)
	for _, sr := range results {
		for _, ce := range sr.Top {
			ev, err := decodeEval(ce)
			if err != nil {
				c.done = true
				return err
			}
			pool = append(pool, ev)
		}
	}

	if c.round == 0 {
		base, found := evaluation{}, false
		for _, ev := range pool {
			if ev.cand.id == 0 {
				base, found = ev, true
				break
			}
		}
		if !found {
			c.done = true
			return fmt.Errorf("search: shard results dropped the base candidate")
		}
		c.baseline = base.value
		c.beam = reduce(pool, c.opt.Beam)
		c.best = c.beam[0]
		c.advance()
		return nil
	}

	c.rounds++
	c.beam = reduce(pool, c.opt.Beam)
	if !c.beam[0].value.Greater(c.best.value) {
		c.done = true // no round improvement: greedy fixpoint
		return nil
	}
	c.best = c.beam[0]
	c.advance()
	return nil
}

// firstError maps the lowest-ID shard failure onto single-pool Search's
// error shape: base run, seed, or candidate.
func (c *Campaign) firstError(results []*ShardResult) error {
	errID := -1
	var errCause error
	for _, sr := range results {
		if sr.ErrID >= 0 && (errID < 0 || sr.ErrID < errID) {
			errID = sr.ErrID
			errCause = sr.shardErr()
		}
	}
	if errID < 0 {
		return nil
	}
	if c.round == 0 {
		if errID == 0 {
			return fmt.Errorf("search: base run: %w", errCause)
		}
		return fmt.Errorf("search: seed %q: %w", c.opt.Seeds[errID-1].Name, errCause)
	}
	return fmt.Errorf("search: candidate %d: %w", errID, errCause)
}

// decodeEval rebuilds a beam entry from its wire form.
func decodeEval(ce CandidateEval) (evaluation, error) {
	scheds, err := DecodeSchedules(ce.Schedules)
	if err != nil {
		return evaluation{}, fmt.Errorf("search: evaluated candidate %d: %w", ce.ID, err)
	}
	if ce.Log == nil {
		return evaluation{}, fmt.Errorf("search: evaluated candidate %d has no decision log", ce.ID)
	}
	return evaluation{
		cand:    candidate{id: ce.ID, rates: ce.Rates, scheds: scheds},
		value:   ce.Value,
		witness: ce.Witness,
		log:     ce.Log,
	}, nil
}

// advance enumerates the next mutation generation off the merged beam, or
// finishes the campaign when the round budget is spent or no unseen mutation
// remains.
func (c *Campaign) advance() {
	if c.mutRounds >= c.opt.Rounds {
		c.pending = nil
		c.done = true
		return
	}
	var cands []candidate
	for _, parent := range c.beam {
		for _, m := range mutations(c.opt, parent) {
			k := key(m)
			if c.seen[k] {
				continue
			}
			c.seen[k] = true
			m.id = c.nextID
			c.nextID++
			cands = append(cands, m)
		}
	}
	if len(cands) == 0 {
		c.pending = nil
		c.done = true
		return
	}
	c.mutRounds++
	c.round++
	c.pending = cands
}

// Result returns the merged outcome once the campaign is Done. The Result is
// byte-identical to single-pool Search in every field except EngineSteps,
// which counts what this campaign's shard layout actually dispatched.
func (c *Campaign) Result() (*Result, error) {
	if !c.done {
		return nil, fmt.Errorf("search: campaign not finished (round %d pending)", c.round)
	}
	if c.best.log == nil {
		return nil, fmt.Errorf("search: campaign finished without a best candidate")
	}
	return &Result{
		Objective:      c.opt.Objective,
		Baseline:       c.baseline,
		Best:           c.best.value,
		BestCandidate:  c.best.cand.id,
		Witness:        c.best.witness,
		Script:         c.best.log.Script(),
		Rates:          c.best.cand.rates,
		Schedules:      effectiveScheds(c.opt, c.best.cand),
		Rounds:         c.rounds,
		Evaluated:      c.evaluated,
		EngineSteps:    c.engineSteps,
		CandidateSteps: c.candidateSteps,
		Notes:          c.notes,
	}, nil
}
