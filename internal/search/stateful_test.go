package search

import (
	"strings"
	"testing"

	"gcs/internal/engine"
	"gcs/internal/lowerbound"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// adaptiveBase builds a fresh adaptive (stateful, cloneable) tail adversary
// for a search over net.
func adaptiveBase(t *testing.T, net *network.Network, dur rat.Rat) engine.Adversary {
	t.Helper()
	adv, err := lowerbound.NewAdaptiveScheduler(net, 0, net.N()-1, lowerbound.AutoThreshold(rf(1, 2), dur))
	if err != nil {
		t.Fatal(err)
	}
	return adv
}

// TestStatefulBasePrefixCacheMatchesFullResim: the fork-safety tentpole —
// with an adaptive (stateful, cloneable) Base as the tail adversary, the
// prefix-cached evaluator must stay byte-identical to full re-simulation,
// across worker counts. Every fork clones the tail's state at the fork
// point; sharing it would corrupt the trigger and break this equivalence.
func TestStatefulBasePrefixCacheMatchesFullResim(t *testing.T) {
	for _, workers := range []int{1, 4} {
		opt := lineOpts(t, 4, workers)
		opt.Base = adaptiveBase(t, opt.Net, opt.Duration)
		cached, err := Search(opt)
		if err != nil {
			t.Fatal(err)
		}
		full := lineOpts(t, 4, workers)
		full.Base = adaptiveBase(t, full.Net, full.Duration)
		full.DisablePrefixCache = true
		scratch, err := Search(full)
		if err != nil {
			t.Fatal(err)
		}
		resultsEqual(t, cached, scratch)
		if cached.EngineSteps >= scratch.EngineSteps {
			t.Fatalf("workers=%d: prefix cache dispatched %d events, full resim %d; no sharing happened",
				workers, cached.EngineSteps, scratch.EngineSteps)
		}
		if len(cached.Notes) != 0 {
			t.Fatalf("cloneable stateful base triggered a degradation note: %v", cached.Notes)
		}
	}
}

// TestStatefulBaseDeterministicAcrossWorkers: worker count must not leak
// into results even when every evaluation clones adversary state.
func TestStatefulBaseDeterministicAcrossWorkers(t *testing.T) {
	serialOpt := lineOpts(t, 4, 1)
	serialOpt.Base = adaptiveBase(t, serialOpt.Net, serialOpt.Duration)
	serial, err := Search(serialOpt)
	if err != nil {
		t.Fatal(err)
	}
	parallelOpt := lineOpts(t, 4, 8)
	parallelOpt.Base = adaptiveBase(t, parallelOpt.Net, parallelOpt.Duration)
	parallel, err := Search(parallelOpt)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, serial, parallel)
}

// pollingAdversary observes the run (stateful) but has no CloneAdversary:
// the search must refuse to fork or parallelize it.
type pollingAdversary struct{ seen int }

func (a *pollingAdversary) Delay(_, _ int, _ uint64, _ rat.Rat, bound rat.Rat) rat.Rat {
	if a.seen%2 == 0 {
		return bound
	}
	return rat.Rat{}
}
func (a *pollingAdversary) OnAction(act trace.Action) {
	if act.Kind != trace.KindSend {
		a.seen++
	}
}
func (a *pollingAdversary) OnSend(trace.MsgRecord)    {}
func (a *pollingAdversary) OnDeliver(trace.MsgRecord) {}

// TestNonCloneableBaseFallsBackSerial: a stateful, non-cloneable Base
// degrades the search to serial from-scratch evaluation with a logged
// reason — and the degraded search is still deterministic in Options.
func TestNonCloneableBaseFallsBackSerial(t *testing.T) {
	run := func() *Result {
		t.Helper()
		opt := lineOpts(t, 4, 8)
		opt.Rounds = 2
		opt.Base = &pollingAdversary{}
		res, err := Search(opt)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a := run()
	if len(a.Notes) != 1 || !strings.Contains(a.Notes[0], "not cloneable") {
		t.Fatalf("expected a serial-fallback note, got %v", a.Notes)
	}
	// Full resim accounting: every dispatched event belongs to exactly one
	// candidate, no trunk replays.
	if a.EngineSteps != a.CandidateSteps {
		t.Fatalf("serial fallback dispatched %d events for %d candidate steps; prefix sharing ran anyway",
			a.EngineSteps, a.CandidateSteps)
	}
	b := run()
	resultsEqual(t, a, b)
}

// TestStatelessBaseHasNoNotes: the common path is untouched by the
// degradation machinery.
func TestStatelessBaseHasNoNotes(t *testing.T) {
	res, err := Search(lineOpts(t, 4, 4))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Notes) != 0 {
		t.Fatalf("stateless base produced notes: %v", res.Notes)
	}
}

// TestPrefixSchedulerEdgeCases: regression coverage for the fork-index
// arithmetic — a candidate diverging at the very first captured decision
// (no shared prefix), one diverging at event 0 (before anything dispatched),
// and one identical to its parent (no divergence exists) must all evaluate
// byte-identically to from-scratch simulation instead of forking at a bogus
// index.
func TestPrefixSchedulerEdgeCases(t *testing.T) {
	opt := lineOpts(t, 4, 2)
	_, err := normalize(&opt)
	if err != nil {
		t.Fatal(err)
	}

	// Capture a parent run: the unmutated base candidate.
	parentCand := candidate{id: 0, rates: make([]rat.Rat, opt.Net.N())}
	parent := evaluate(opt, parentCand)
	if parent.err != nil {
		t.Fatal(parent.err)
	}
	decs := parent.log.Decisions()
	if len(decs) < 2 {
		t.Fatalf("parent run captured only %d decisions", len(decs))
	}

	mutate := func(idx int) map[trace.MsgKey]rat.Rat {
		s := parent.log.Script()
		d := decs[idx]
		v := d.Bound // snap to the full bound; the base is Midpoint, so this diverges
		if v.Equal(d.Delay) {
			v = rat.Rat{}
		}
		s[d.Key] = v
		return s
	}
	cands := []candidate{
		// Diverges at the first captured decision: the trunk must not replay
		// a single event before forking.
		{script: mutate(0), rates: parentCand.rates, parent: parent.log, divIdx: 0, divEvent: decs[0].Event},
		// Bogus divergence event 0 (before any dispatched event): must fork
		// from the initial state and still match from-scratch.
		{script: mutate(0), rates: parentCand.rates, parent: parent.log, divIdx: 0, divEvent: 0},
		// Identical to the parent — divergence never occurs; the fork just
		// replays the parent's tail.
		{script: parent.log.Script(), rates: parentCand.rates, parent: parent.log,
			divIdx: len(decs) - 1, divEvent: decs[len(decs)-1].Event},
	}
	for i := range cands {
		cands[i].id = i + 1
	}
	forked, _ := evalAll(opt, cands)
	scratchOpt := opt
	scratchOpt.DisablePrefixCache = true
	scratch, _ := evalAll(scratchOpt, cands)
	for i := range cands {
		f, s := forked[i], scratch[i]
		if f.err != nil || s.err != nil {
			t.Fatalf("candidate %d: forked err=%v scratch err=%v", i, f.err, s.err)
		}
		if !f.value.Equal(s.value) || f.steps != s.steps {
			t.Fatalf("candidate %d: forked value %s steps %d, scratch value %s steps %d",
				i, f.value, f.steps, s.value, s.steps)
		}
		fd, sd := f.log.Decisions(), s.log.Decisions()
		if len(fd) != len(sd) {
			t.Fatalf("candidate %d: forked %d decisions, scratch %d", i, len(fd), len(sd))
		}
		for k := range fd {
			if fd[k].Key != sd[k].Key || !fd[k].Delay.Equal(sd[k].Delay) || fd[k].Event != sd[k].Event {
				t.Fatalf("candidate %d decision %d differs: %+v vs %+v", i, k, fd[k], sd[k])
			}
		}
	}
	// The identical candidate's outcome equals its parent's exactly.
	if !forked[2].value.Equal(parent.value) || forked[2].steps != parent.steps {
		t.Fatalf("identical candidate evaluated to %s/%d, parent %s/%d",
			forked[2].value, forked[2].steps, parent.value, parent.steps)
	}
}
