package search

import (
	"encoding/json"
	"runtime"
	"testing"
)

// runSharded executes opt as a distributed-style campaign: every generation
// is exported in wire form, JSON round-tripped (exactly what the coordinator
// ships to workers), split into `shards` contiguous ranges — empty ranges
// included — evaluated independently via EvaluateShard, JSON round-tripped
// again (the worker's response), and merged with Absorb.
func runSharded(t *testing.T, opt Options, shards int) *Result {
	t.Helper()
	c, err := NewCampaign(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !c.Shardable() {
		t.Fatal("campaign unexpectedly not shardable")
	}
	for !c.Done() {
		data, err := json.Marshal(c.Generation())
		if err != nil {
			t.Fatal(err)
		}
		var gen Generation
		if err := json.Unmarshal(data, &gen); err != nil {
			t.Fatal(err)
		}
		n := len(gen.Candidates)
		results := make([]*ShardResult, 0, shards)
		for s := 0; s < shards; s++ {
			lo, hi := s*n/shards, (s+1)*n/shards
			sr, err := EvaluateShard(opt, &gen, lo, hi)
			if err != nil {
				t.Fatal(err)
			}
			buf, err := json.Marshal(sr)
			if err != nil {
				t.Fatal(err)
			}
			back := new(ShardResult)
			if err := json.Unmarshal(buf, back); err != nil {
				t.Fatal(err)
			}
			results = append(results, back)
		}
		if err := c.Absorb(results); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Result()
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// shardCounts is the required invariance matrix: a single shard, a small
// split, a shard count exceeding most generations (forcing empty shards),
// and one past the worker-pool width.
func shardCounts() []int {
	return []int{1, 2, 7, runtime.GOMAXPROCS(0) + 1}
}

// TestShardLayoutInvariance: Search over any partition of the candidate pool
// merges to the byte-identical single-pool result. The per-shard top-Beam
// plus the baseline candidate is always a superset of the global top-Beam's
// intersection with the shard, so the merge loses nothing — whatever the
// layout, including empty shards.
func TestShardLayoutInvariance(t *testing.T) {
	opt := lineOpts(t, 4, 0)
	single, err := Search(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range shardCounts() {
		sharded := runSharded(t, lineOpts(t, 4, 0), shards)
		resultsEqual(t, single, sharded)
	}
}

// TestShardLayoutInvarianceWithRateWindows: windowed rate surgery carries
// full schedule overrides across the wire; they must round-trip exactly.
func TestShardLayoutInvarianceWithRateWindows(t *testing.T) {
	mk := func() Options {
		opt := lineOpts(t, 3, 0)
		opt.RateWindows = 2
		opt.Rounds = 2
		return opt
	}
	single, err := Search(mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range shardCounts() {
		sharded := runSharded(t, mk(), shards)
		resultsEqual(t, single, sharded)
	}
}

// TestShardLayoutInvarianceStatefulBase: an adaptive (stateful, cloneable)
// Base is fork- and shard-safe — every shard evaluates against independent
// clones of the initial state, so any layout reproduces the single-pool
// bytes.
func TestShardLayoutInvarianceStatefulBase(t *testing.T) {
	mk := func() Options {
		opt := lineOpts(t, 4, 0)
		opt.Base = adaptiveBase(t, opt.Net, opt.Duration)
		return opt
	}
	single, err := Search(mk())
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range shardCounts() {
		sharded := runSharded(t, mk(), shards)
		resultsEqual(t, single, sharded)
	}
}

// TestShardCandidateStepsInvariant: CandidateSteps (the from-scratch cost of
// every evaluation) must not depend on the shard layout; EngineSteps may —
// each shard replays its own trunk prefixes — and for any split beyond one
// shard of one pool it strictly exceeds the single-pool dispatch count on a
// prefix-heavy workload.
func TestShardCandidateStepsInvariant(t *testing.T) {
	opt := lineOpts(t, 4, 0)
	single, err := Search(opt)
	if err != nil {
		t.Fatal(err)
	}
	for _, shards := range shardCounts() {
		sharded := runSharded(t, lineOpts(t, 4, 0), shards)
		if sharded.CandidateSteps != single.CandidateSteps {
			t.Fatalf("shards=%d: CandidateSteps %d, single-pool %d",
				shards, sharded.CandidateSteps, single.CandidateSteps)
		}
	}
}

// TestEvaluateShardRejectsSerialBase: a stateful, non-cloneable Base cannot
// be sharded — the serial fallback needs the one shared instance to see
// every run — and EvaluateShard must refuse rather than silently diverge.
func TestEvaluateShardRejectsSerialBase(t *testing.T) {
	opt := lineOpts(t, 3, 0)
	opt.Base = &pollingAdversary{}
	c, err := NewCampaign(opt)
	if err != nil {
		t.Fatal(err)
	}
	if c.Shardable() {
		t.Fatal("non-cloneable stateful base reported shardable")
	}
	if _, err := EvaluateShard(opt, c.Generation(), 0, c.NumPending()); err == nil {
		t.Fatal("EvaluateShard accepted a serial-only campaign")
	}
	// The local whole-pool path still works — that is the coordinator's
	// degradation for unshardable campaigns.
	for !c.Done() {
		sr, err := c.EvaluateRange(0, c.NumPending())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Absorb([]*ShardResult{sr}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Result()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Notes) == 0 {
		t.Fatal("serial fallback left no note")
	}
}

// TestAbsorbRejectsIncompleteCoverage: shard results must cover the pending
// generation exactly; losing a shard is a coordinator bug (or a retry), not
// a silent hole in the pool.
func TestAbsorbRejectsIncompleteCoverage(t *testing.T) {
	opt := lineOpts(t, 3, 0)
	c, err := NewCampaign(opt)
	if err != nil {
		t.Fatal(err)
	}
	// Round 0 is the lone base candidate; absorb it to reach a mutation
	// generation with a real pool.
	sr, err := c.EvaluateRange(0, c.NumPending())
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Absorb([]*ShardResult{sr}); err != nil {
		t.Fatal(err)
	}
	n := c.NumPending()
	if n < 2 {
		t.Fatalf("mutation generation has %d candidates, want >= 2", n)
	}
	partial, err := c.EvaluateRange(0, n-1)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Absorb([]*ShardResult{partial}); err == nil {
		t.Fatal("Absorb accepted partial coverage")
	}
	// Full coverage after the rejected partial absorb still works: the
	// campaign state must be untouched by the failed merge.
	for !c.Done() {
		full, err := c.EvaluateRange(0, c.NumPending())
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Absorb([]*ShardResult{full}); err != nil {
			t.Fatal(err)
		}
	}
	res, err := c.Result()
	if err != nil {
		t.Fatal(err)
	}
	want, err := Search(opt)
	if err != nil {
		t.Fatal(err)
	}
	resultsEqual(t, want, res)
}
