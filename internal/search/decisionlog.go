// Package search hunts worst-case executions: it drives the deterministic
// engine under candidate adversaries and maximizes a skew objective read
// from the online trackers, looking for the delay and drift choices that
// force the most skew out of a protocol.
//
// Fan & Lynch's lower bounds are adversary constructions — executions whose
// drift and delay choices are tuned to force skew. The simulator replays the
// paper's two special-cased constructions exactly (internal/lowerbound); this
// package asks the complementary empirical question: how much skew can an
// automated adversary force on an arbitrary protocol and topology, and how
// close does that come to the certified bounds?
//
// The search is replay-based: a DecisionLog observer captures every
// per-message delay decision of a run as a replayable script, and candidate
// mutations edit one decision (delay snapped to {0, bound/2, bound}), one
// node's whole-run rate (flipped within ±ρ), or one node's rate over a
// window (clock.ModifyWindow surgery), with a ScriptedAdversary tail
// handling decisions beyond the script.
//
// Evaluation is prefix-cached: two candidates sharing a decision-script
// prefix share the prefix execution, exactly the structure of the Fan &
// Lynch constructions (perturb a base execution at chosen points, keep the
// prefix indistinguishable). Each round groups the beam's delay mutants by
// parent, replays the shared parent prefix once on a trunk engine, forks the
// engine (Engine.Fork + tracker Clones) at each mutant's first diverging
// decision, and evaluates only the suffix. Rate mutants change hardware
// schedules from time zero, so they — and injected Seeds — are evaluated
// from scratch. The fork-based evaluation is byte-identical to full
// re-simulation (asserted by tests; DisablePrefixCache switches it off).
// Candidates are evaluated concurrently by a bounded worker pool and reduced
// by deterministic argmax with ties broken on candidate index, so the result
// is byte-identical regardless of worker count or GOMAXPROCS.
package search

import (
	"encoding/json"
	"fmt"

	"gcs/internal/engine"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// Decision is one captured per-message delay choice: the message identity,
// when it was sent, the adversary's chosen delay, the bound d(from,to) the
// choice was made within, and the 1-based index of the dispatched engine
// event during which the send happened. Event is what lets the prefix-cached
// evaluator position a fork exactly before the event that realizes a mutated
// decision: replay Event−1 events, fork, and the mutant's whole divergence
// plays out in the fork.
type Decision struct {
	Key      trace.MsgKey
	SendReal rat.Rat
	Delay    rat.Rat
	Bound    rat.Rat
	Event    uint64
}

// DecisionLog is an engine observer that captures every per-message delay
// decision from the MsgRecord stream, in send order, and converts the run
// into a replayable script for engine.ScriptedAdversary. Attach it with
// Engine.Observe before the first step to capture the complete run.
type DecisionLog struct {
	net       *network.Network
	decisions []Decision
	events    uint64 // dispatched events seen so far (== Engine.Steps())
}

// NewDecisionLog returns a log for runs over net (needed to recover each
// decision's delay bound).
func NewDecisionLog(net *network.Network) *DecisionLog {
	return &DecisionLog{net: net}
}

// Clone returns an independent copy of the log. Attach the clone to a forked
// engine to keep capturing a branched run's decisions: the clone carries the
// shared prefix (including the event counter, so Decision.Event stays
// aligned with Engine.Steps across the fork), and the original continues
// logging its own branch untouched.
func (l *DecisionLog) Clone() *DecisionLog {
	return &DecisionLog{
		net:       l.net,
		decisions: append([]Decision(nil), l.decisions...),
		events:    l.events,
	}
}

// OnAction implements the engine Observer interface: dispatched events
// (init, timer, recv — everything but the send actions emitted from inside
// them) advance the event counter stamped onto decisions.
func (l *DecisionLog) OnAction(a trace.Action) {
	if a.Kind != trace.KindSend {
		l.events++
	}
}

// OnSend implements the engine Observer interface: every send is one delay
// decision, captured at the moment the adversary fixed it.
func (l *DecisionLog) OnSend(rec trace.MsgRecord) {
	if rec.Dropped {
		// A dropped message carries no delay decision: the fault layer
		// removed it before the adversary priced it, so there is nothing
		// to replay or mutate.
		return
	}
	l.decisions = append(l.decisions, Decision{
		Key:      rec.Key,
		SendReal: rec.SendReal,
		Delay:    rec.Delay,
		Bound:    l.net.Dist(rec.Key.From, rec.Key.To),
		Event:    l.events,
	})
}

// OnDeliver implements the engine Observer interface (no-op).
func (l *DecisionLog) OnDeliver(trace.MsgRecord) {}

// Len returns the number of captured decisions.
func (l *DecisionLog) Len() int { return len(l.decisions) }

// Decisions returns the captured decisions in send order. The caller must
// not modify the returned slice.
func (l *DecisionLog) Decisions() []Decision { return l.decisions }

// Script converts the captured run into a replayable delay script.
func (l *DecisionLog) Script() map[trace.MsgKey]rat.Rat {
	out := make(map[trace.MsgKey]rat.Rat, len(l.decisions))
	for _, d := range l.decisions {
		out[d.Key] = d.Delay
	}
	return out
}

// ScriptPrefix converts the first k decisions into a script; decisions
// beyond the prefix are left to a tail adversary at replay time. k is
// clamped to [0, Len()].
func (l *DecisionLog) ScriptPrefix(k int) map[trace.MsgKey]rat.Rat {
	if k < 0 {
		k = 0
	}
	if k > len(l.decisions) {
		k = len(l.decisions)
	}
	out := make(map[trace.MsgKey]rat.Rat, k)
	for _, d := range l.decisions[:k] {
		out[d.Key] = d.Delay
	}
	return out
}

// Scripted wraps the captured script in a replaying adversary with the given
// tail for decisions beyond the script.
func (l *DecisionLog) Scripted(tail engine.Adversary) engine.ScriptedAdversary {
	return engine.ScriptedAdversary{Delays: l.Script(), Fallback: tail}
}

// String returns a short summary for debugging.
func (l *DecisionLog) String() string {
	return fmt.Sprintf("decisionlog(%d decisions)", len(l.decisions))
}

// decisionWire is one captured decision in JSON form. Every field is an
// exact rational (or integer), so a round-trip reproduces the decision bit
// for bit.
type decisionWire struct {
	From     int     `json:"from"`
	To       int     `json:"to"`
	Seq      uint64  `json:"seq"`
	SendReal rat.Rat `json:"send_real"`
	Delay    rat.Rat `json:"delay"`
	Bound    rat.Rat `json:"bound"`
	Event    uint64  `json:"event"`
}

// decisionLogWire is the JSON form of a DecisionLog: the decisions in send
// order plus the event counter, everything replay and mutation need. The
// network is deliberately not serialized — each decision carries its own
// delay bound — so a decoded log replays and enumerates mutations anywhere,
// but cannot observe further engine runs (it has no network to read bounds
// from; attach a fresh NewDecisionLog for that).
type decisionLogWire struct {
	Decisions []decisionWire `json:"decisions"`
	Events    uint64         `json:"events"`
}

// MarshalJSON encodes the log as a replayable script: decisions in send
// order with their exact rational times, delays, and bounds. This is the
// wire format the distributed coordinator ships to workers, and a stable way
// to save a found adversary for later replay.
func (l *DecisionLog) MarshalJSON() ([]byte, error) {
	w := decisionLogWire{Events: l.events, Decisions: make([]decisionWire, len(l.decisions))}
	for i, d := range l.decisions {
		w.Decisions[i] = decisionWire{
			From:     d.Key.From,
			To:       d.Key.To,
			Seq:      d.Key.Seq,
			SendReal: d.SendReal,
			Delay:    d.Delay,
			Bound:    d.Bound,
			Event:    d.Event,
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes a log serialized by MarshalJSON. The decoded log
// supports Script, ScriptPrefix, Scripted, Decisions, and Clone exactly as
// the original did; it is not attached to a network, so it must not be used
// as a live engine observer (see MarshalJSON).
func (l *DecisionLog) UnmarshalJSON(data []byte) error {
	var w decisionLogWire
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	l.net = nil
	l.events = w.Events
	l.decisions = make([]Decision, len(w.Decisions))
	for i, d := range w.Decisions {
		l.decisions[i] = Decision{
			Key:      trace.MsgKey{From: d.From, To: d.To, Seq: d.Seq},
			SendReal: d.SendReal,
			Delay:    d.Delay,
			Bound:    d.Bound,
			Event:    d.Event,
		}
	}
	return nil
}
