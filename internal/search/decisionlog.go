// Package search hunts worst-case executions: it drives the deterministic
// engine under candidate adversaries and maximizes a skew objective read
// from the online trackers, looking for the delay and drift choices that
// force the most skew out of a protocol.
//
// Fan & Lynch's lower bounds are adversary constructions — executions whose
// drift and delay choices are tuned to force skew. The simulator replays the
// paper's two special-cased constructions exactly (internal/lowerbound); this
// package asks the complementary empirical question: how much skew can an
// automated adversary force on an arbitrary protocol and topology, and how
// close does that come to the certified bounds?
//
// The search is replay-based: a DecisionLog observer captures every
// per-message delay decision of a run as a replayable script, candidate
// mutations edit one decision (delay snapped to {0, bound/2, bound}) or one
// node's rate (flipped within ±ρ), and every candidate is re-simulated from
// scratch under a ScriptedAdversary whose tail handles decisions beyond the
// script. No engine state is ever cloned or shared. Candidates are evaluated
// concurrently by a bounded worker pool — each worker owns an independent
// Engine and trackers — and reduced by deterministic argmax with ties broken
// on candidate index, so the result is byte-identical regardless of worker
// count or GOMAXPROCS.
package search

import (
	"fmt"

	"gcs/internal/engine"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// Decision is one captured per-message delay choice: the message identity,
// when it was sent, the adversary's chosen delay, and the bound d(from,to)
// the choice was made within.
type Decision struct {
	Key      trace.MsgKey
	SendReal rat.Rat
	Delay    rat.Rat
	Bound    rat.Rat
}

// DecisionLog is an engine observer that captures every per-message delay
// decision from the MsgRecord stream, in send order, and converts the run
// into a replayable script for engine.ScriptedAdversary. Attach it with
// Engine.Observe before the first step to capture the complete run.
type DecisionLog struct {
	net       *network.Network
	decisions []Decision
}

// NewDecisionLog returns a log for runs over net (needed to recover each
// decision's delay bound).
func NewDecisionLog(net *network.Network) *DecisionLog {
	return &DecisionLog{net: net}
}

// OnAction implements the engine Observer interface (no-op).
func (l *DecisionLog) OnAction(trace.Action) {}

// OnSend implements the engine Observer interface: every send is one delay
// decision, captured at the moment the adversary fixed it.
func (l *DecisionLog) OnSend(rec trace.MsgRecord) {
	l.decisions = append(l.decisions, Decision{
		Key:      rec.Key,
		SendReal: rec.SendReal,
		Delay:    rec.Delay,
		Bound:    l.net.Dist(rec.Key.From, rec.Key.To),
	})
}

// OnDeliver implements the engine Observer interface (no-op).
func (l *DecisionLog) OnDeliver(trace.MsgRecord) {}

// Len returns the number of captured decisions.
func (l *DecisionLog) Len() int { return len(l.decisions) }

// Decisions returns the captured decisions in send order. The caller must
// not modify the returned slice.
func (l *DecisionLog) Decisions() []Decision { return l.decisions }

// Script converts the captured run into a replayable delay script.
func (l *DecisionLog) Script() map[trace.MsgKey]rat.Rat {
	out := make(map[trace.MsgKey]rat.Rat, len(l.decisions))
	for _, d := range l.decisions {
		out[d.Key] = d.Delay
	}
	return out
}

// ScriptPrefix converts the first k decisions into a script; decisions
// beyond the prefix are left to a tail adversary at replay time. k is
// clamped to [0, Len()].
func (l *DecisionLog) ScriptPrefix(k int) map[trace.MsgKey]rat.Rat {
	if k < 0 {
		k = 0
	}
	if k > len(l.decisions) {
		k = len(l.decisions)
	}
	out := make(map[trace.MsgKey]rat.Rat, k)
	for _, d := range l.decisions[:k] {
		out[d.Key] = d.Delay
	}
	return out
}

// Scripted wraps the captured script in a replaying adversary with the given
// tail for decisions beyond the script.
func (l *DecisionLog) Scripted(tail engine.Adversary) engine.ScriptedAdversary {
	return engine.ScriptedAdversary{Delays: l.Script(), Fallback: tail}
}

// String returns a short summary for debugging.
func (l *DecisionLog) String() string {
	return fmt.Sprintf("decisionlog(%d decisions)", len(l.decisions))
}
