package search

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"gcs/internal/algorithms"
	"gcs/internal/clock"
	"gcs/internal/engine"
	"gcs/internal/network"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// captureLog runs the gradient protocol on a small line under the midpoint
// adversary and returns the realized decision log — a deterministic run, so
// its serialized form is golden-file stable.
func captureLog(t *testing.T) *DecisionLog {
	t.Helper()
	net, err := network.Line(3)
	if err != nil {
		t.Fatal(err)
	}
	scheds := []*clock.Schedule{
		clock.Constant(ri(1)),
		clock.Constant(rf(9, 8)),
		clock.Constant(rf(7, 8)),
	}
	log := NewDecisionLog(net)
	eng, err := engine.New(net,
		engine.WithProtocol(algorithms.Gradient(algorithms.DefaultGradientParams())),
		engine.WithAdversary(engine.Midpoint()),
		engine.WithSchedules(scheds),
		engine.WithRho(rf(1, 4)),
		engine.WithObservers(log),
	)
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.RunUntil(ri(6)); err != nil {
		t.Fatal(err)
	}
	if log.Len() == 0 {
		t.Fatal("run captured no decisions")
	}
	return log
}

// TestDecisionLogJSONRoundTrip: the wire format the coordinator ships to
// workers must reproduce every decision — and the derived script — bit for
// bit.
func TestDecisionLogJSONRoundTrip(t *testing.T) {
	log := captureLog(t)
	data, err := json.Marshal(log)
	if err != nil {
		t.Fatal(err)
	}
	back := new(DecisionLog)
	if err := json.Unmarshal(data, back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != log.Len() {
		t.Fatalf("decoded %d decisions, want %d", back.Len(), log.Len())
	}
	for i, d := range log.Decisions() {
		b := back.Decisions()[i]
		if b.Key != d.Key || !b.SendReal.Equal(d.SendReal) || !b.Delay.Equal(d.Delay) ||
			!b.Bound.Equal(d.Bound) || b.Event != d.Event {
			t.Fatalf("decision %d differs: %+v vs %+v", i, b, d)
		}
	}
	script, backScript := log.Script(), back.Script()
	if len(backScript) != len(script) {
		t.Fatalf("decoded script has %d entries, want %d", len(backScript), len(script))
	}
	for k, v := range script {
		if bv, ok := backScript[k]; !ok || !bv.Equal(v) {
			t.Fatalf("script entry %v differs: %s vs %s (present=%v)", k, v, bv, ok)
		}
	}
	// The round-trip is idempotent: re-encoding the decoded log yields the
	// same bytes.
	again, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Fatalf("re-encoded log differs:\n%s\nvs\n%s", again, data)
	}
}

// TestDecisionLogGolden pins the serialized form against a committed golden
// file: the wire format is a compatibility surface (saved adversaries,
// coordinator/worker exchanges), so accidental format drift must fail
// loudly. Regenerate with `go test ./internal/search -run Golden -update`.
func TestDecisionLogGolden(t *testing.T) {
	log := captureLog(t)
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(log); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "decisionlog.golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("serialized DecisionLog drifted from golden file %s:\n%s\nwant:\n%s", golden, buf.Bytes(), want)
	}
	// The golden bytes themselves decode into a replayable log.
	back := new(DecisionLog)
	if err := json.Unmarshal(want, back); err != nil {
		t.Fatal(err)
	}
	if back.Len() != log.Len() {
		t.Fatalf("golden decodes to %d decisions, want %d", back.Len(), log.Len())
	}
	if adv := back.Scripted(engine.Midpoint()); len(adv.Delays) != len(log.Script()) {
		t.Fatalf("decoded log scripts %d delays, want %d", len(adv.Delays), len(log.Script()))
	}
}
