package search

import "gcs/internal/obs"

// Metrics is the search layer's instrument set: campaign-level counters a
// Campaign advances as it absorbs shard results. One Metrics value may span
// many campaigns (a coordinator's whole run, a worker's lifetime); the
// counters are cumulative across them.
type Metrics struct {
	// Generations counts merged generations (Absorb calls that covered a
	// pending generation).
	Generations *obs.Counter
	// Candidates counts candidate evaluations absorbed.
	Candidates *obs.Counter
	// EngineSteps counts engine events actually dispatched by absorbed
	// shards (trunk replays included) — it reconciles exactly with
	// Result.EngineSteps summed over the campaigns feeding this Metrics.
	EngineSteps *obs.Counter
	// CandidateSteps counts what the same evaluations would have dispatched
	// re-simulated from scratch — reconciles with Result.CandidateSteps.
	CandidateSteps *obs.Counter
	// PrefixSavedSteps counts the engine events prefix caching saved:
	// CandidateSteps − EngineSteps, accumulated per absorbed shard.
	PrefixSavedSteps *obs.Counter
}

// NewMetrics registers the search instrument set in r.
func NewMetrics(r *obs.Registry) *Metrics {
	return &Metrics{
		Generations:      r.Counter("gcs_search_generations_total", "campaign generations merged"),
		Candidates:       r.Counter("gcs_search_candidates_total", "candidate evaluations absorbed"),
		EngineSteps:      r.Counter("gcs_search_engine_steps_total", "engine events dispatched by absorbed shards"),
		CandidateSteps:   r.Counter("gcs_search_candidate_steps_total", "from-scratch-equivalent engine events of absorbed shards"),
		PrefixSavedSteps: r.Counter("gcs_search_prefix_saved_steps_total", "engine events saved by prefix-cached evaluation"),
	}
}

// absorbShard advances the counters for one absorbed shard result.
func (m *Metrics) absorbShard(sr *ShardResult) {
	if m == nil {
		return
	}
	m.EngineSteps.Add(sr.Dispatched)
	m.CandidateSteps.Add(sr.FullSteps)
	if sr.FullSteps > sr.Dispatched {
		m.PrefixSavedSteps.Add(sr.FullSteps - sr.Dispatched)
	}
}
