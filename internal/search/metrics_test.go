package search

import (
	"testing"

	"gcs/internal/algorithms"
	"gcs/internal/network"
	"gcs/internal/obs"
	"gcs/internal/rat"
)

// TestMetricsReconcileWithResult pins the instrument contract: the counters
// a Campaign advances while absorbing reconcile exactly with the final
// Result's accounting, and attaching them changes no result byte.
func TestMetricsReconcileWithResult(t *testing.T) {
	net, err := network.TwoNode(rat.FromInt(16))
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{
		Net:            net,
		Protocol:       algorithms.Gradient(algorithms.DefaultGradientParams()),
		Duration:       rat.FromInt(32),
		Rho:            rat.MustFrac(1, 2),
		Rounds:         3,
		Beam:           2,
		DelayMutations: 8,
		MutateTail:     rat.MustFrac(1, 2),
	}
	want, err := Search(opt)
	if err != nil {
		t.Fatal(err)
	}

	reg := obs.NewRegistry()
	opt.Metrics = NewMetrics(reg)
	opt.EngineMetrics = nil
	got, err := Search(opt)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Best.Equal(want.Best) || got.Evaluated != want.Evaluated || got.EngineSteps != want.EngineSteps {
		t.Fatalf("instrumentation changed the result: best %s vs %s, evaluated %d vs %d, steps %d vs %d",
			got.Best, want.Best, got.Evaluated, want.Evaluated, got.EngineSteps, want.EngineSteps)
	}

	m := opt.Metrics
	if m.EngineSteps.Value() != got.EngineSteps {
		t.Fatalf("engine-steps counter %d != Result.EngineSteps %d", m.EngineSteps.Value(), got.EngineSteps)
	}
	if m.CandidateSteps.Value() != got.CandidateSteps {
		t.Fatalf("candidate-steps counter %d != Result.CandidateSteps %d", m.CandidateSteps.Value(), got.CandidateSteps)
	}
	if m.Candidates.Value() != uint64(got.Evaluated) {
		t.Fatalf("candidates counter %d != Result.Evaluated %d", m.Candidates.Value(), got.Evaluated)
	}
	if m.Generations.Value() == 0 {
		t.Fatal("no generations counted")
	}
	if want := got.CandidateSteps - got.EngineSteps; m.PrefixSavedSteps.Value() != want {
		t.Fatalf("prefix-saved counter %d != CandidateSteps−EngineSteps %d", m.PrefixSavedSteps.Value(), want)
	}

	// The figures are live in the registry, not just on the struct.
	snap := reg.Snapshot()
	if ms, ok := snap.Get("gcs_search_engine_steps_total"); !ok || ms.Value != float64(got.EngineSteps) {
		t.Fatalf("registry snapshot engine steps = %v (present=%v), want %d", ms.Value, ok, got.EngineSteps)
	}
}
