package search

import (
	"fmt"
	"runtime"
	"testing"

	"gcs/internal/algorithms"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// benchCandidates builds a fixed, deterministic candidate batch by capturing
// the base run and snapping one sampled decision per candidate — the exact
// per-round workload of the search loop.
func benchCandidates(b *testing.B, opt Options) []candidate {
	b.Helper()
	if _, err := normalize(&opt); err != nil {
		b.Fatal(err)
	}
	seedEval := evaluate(opt, candidate{rates: make([]rat.Rat, opt.Net.N())})
	if seedEval.err != nil {
		b.Fatal(seedEval.err)
	}
	return mutations(opt, seedEval)
}

// BenchmarkSearch measures candidate-evaluation throughput of one search
// round as the worker pool grows: evaluations are independent simulations,
// so the speedup should stay near-linear until the core count is exhausted.
func BenchmarkSearch(b *testing.B) {
	net, err := network.Line(9)
	if err != nil {
		b.Fatal(err)
	}
	opt := Options{
		Net:            net,
		Protocol:       algorithms.Gradient(algorithms.DefaultGradientParams()),
		Duration:       rat.FromInt(24),
		Rho:            rat.MustFrac(1, 2),
		DelayMutations: 12,
	}
	if _, err := normalize(&opt); err != nil {
		b.Fatal(err)
	}
	cands := benchCandidates(b, opt)
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := opt
			o.Workers = workers
			b.ReportAllocs()
			b.ReportMetric(float64(len(cands)), "candidates/op")
			for i := 0; i < b.N; i++ {
				results, _ := evalAll(o, cands)
				for _, ev := range results {
					if ev.err != nil {
						b.Fatal(ev.err)
					}
				}
			}
		})
	}
}

// longE13Opts is the E13 -long scale workload: the two-node diameter-16
// cell's search configuration (certified-bound horizon, tail-biased delay
// mutations), shared by the end-to-end and prefix-cached benchmarks so the
// steps-per-candidate comparison is apples to apples.
func longE13Opts(b *testing.B) Options {
	b.Helper()
	d := rat.FromInt(16)
	net, err := network.TwoNode(d)
	if err != nil {
		b.Fatal(err)
	}
	return Options{
		Net:            net,
		Protocol:       algorithms.Gradient(algorithms.DefaultGradientParams()),
		Duration:       rat.FromInt(2).Mul(d), // τ·d with the default ρ = 1/2
		Rho:            rat.MustFrac(1, 2),
		Rounds:         3,
		Beam:           2,
		DelayMutations: 8,
		MutateTail:     rat.MustFrac(1, 2),
	}
}

// BenchmarkSearchEndToEnd measures a whole search with prefix caching
// disabled — every candidate re-simulated from scratch, the pre-fork
// engine's behavior — on the E13 -long workload. Compare its steps/cand
// metric with BenchmarkSearchPrefixCached to quantify the prefix-cache win.
func BenchmarkSearchEndToEnd(b *testing.B) {
	opt := longE13Opts(b)
	opt.DisablePrefixCache = true
	benchSearch(b, opt)
}

// BenchmarkSearchPrefixCached is the identical workload evaluated through
// the prefix-tree scheduler: shared script prefixes run once, forks evaluate
// suffixes only. Byte-identical results, fewer engine steps per candidate.
func BenchmarkSearchPrefixCached(b *testing.B) {
	benchSearch(b, longE13Opts(b))
}

// BenchmarkSearchRateWindows is the E13 -long workload with windowed rate
// surgery enabled: each beam parent fans out rate-window mutants alongside
// delay mutants, all sharing the parent's trunk — window mutants fork at
// their window's start with the schedule swapped in. The steps/cand metric
// against BenchmarkSearchEndToEnd quantifies the rate-mutant sharing win.
func BenchmarkSearchRateWindows(b *testing.B) {
	opt := longE13Opts(b)
	opt.RateWindows = 4
	benchSearch(b, opt)
}

func benchSearch(b *testing.B, opt Options) {
	b.Helper()
	// The CI perf gate watches this pair's allocs/op alongside ns/op.
	b.ReportAllocs()
	var sink map[trace.MsgKey]rat.Rat
	for i := 0; i < b.N; i++ {
		res, err := Search(opt)
		if err != nil {
			b.Fatal(err)
		}
		sink = res.Script
		b.ReportMetric(float64(res.EngineSteps)/float64(res.Evaluated), "steps/cand")
		b.ReportMetric(float64(res.CandidateSteps)/float64(res.Evaluated), "resim-steps/cand")
	}
	_ = sink
}
