package search

import (
	"fmt"
	"runtime"
	"testing"

	"gcs/internal/algorithms"
	"gcs/internal/network"
	"gcs/internal/rat"
	"gcs/internal/trace"
)

// benchCandidates builds a fixed, deterministic candidate batch by capturing
// the base run and snapping one sampled decision per candidate — the exact
// per-round workload of the search loop.
func benchCandidates(b *testing.B, opt Options) []candidate {
	b.Helper()
	if err := normalize(&opt); err != nil {
		b.Fatal(err)
	}
	seedEval := evaluate(opt, candidate{rates: make([]rat.Rat, opt.Net.N())})
	if seedEval.err != nil {
		b.Fatal(seedEval.err)
	}
	return mutations(opt, seedEval)
}

// BenchmarkSearch measures candidate-evaluation throughput of one search
// round as the worker pool grows: evaluations are independent simulations,
// so the speedup should stay near-linear until the core count is exhausted.
func BenchmarkSearch(b *testing.B) {
	net, err := network.Line(9)
	if err != nil {
		b.Fatal(err)
	}
	opt := Options{
		Net:            net,
		Protocol:       algorithms.Gradient(algorithms.DefaultGradientParams()),
		Duration:       rat.FromInt(24),
		Rho:            rat.MustFrac(1, 2),
		DelayMutations: 12,
	}
	if err := normalize(&opt); err != nil {
		b.Fatal(err)
	}
	cands := benchCandidates(b, opt)
	for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0)} {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			o := opt
			o.Workers = workers
			b.ReportMetric(float64(len(cands)), "candidates/op")
			for i := 0; i < b.N; i++ {
				results := evalAll(o, cands)
				for _, ev := range results {
					if ev.err != nil {
						b.Fatal(ev.err)
					}
				}
			}
		})
	}
}

// BenchmarkSearchEndToEnd measures a whole small search, the unit gcsbench's
// E13 runs per protocol × topology cell.
func BenchmarkSearchEndToEnd(b *testing.B) {
	net, err := network.TwoNode(rat.FromInt(4))
	if err != nil {
		b.Fatal(err)
	}
	opt := Options{
		Net:            net,
		Protocol:       algorithms.Gradient(algorithms.DefaultGradientParams()),
		Duration:       rat.FromInt(8),
		Rho:            rat.MustFrac(1, 2),
		Rounds:         3,
		Beam:           2,
		DelayMutations: 8,
	}
	var sink map[trace.MsgKey]rat.Rat
	for i := 0; i < b.N; i++ {
		res, err := Search(opt)
		if err != nil {
			b.Fatal(err)
		}
		sink = res.Script
	}
	_ = sink
}
