// Prefix-cached candidate evaluation: the scheduler that turns shared
// decision-script prefixes into shared execution.
//
// A delay mutant differs from its parent only from one captured decision on;
// everything before that decision — and therefore every engine event before
// the event that realizes it — is byte-identical to the parent's run. The
// scheduler exploits this by grouping each round's delay mutants by parent,
// replaying the parent's script once on a "trunk" engine, stepping the trunk
// to just before each mutant's diverging event (mutants are processed in
// divergence order, so the trunk advances monotonically and is replayed at
// most once per parent), and forking there: Engine.Fork clones the engine,
// the online trackers are Cloned alongside, the fork gets the mutant's
// script as its adversary, and only the suffix is simulated.
//
// Equivalence to from-scratch evaluation is structural: the fork point lies
// strictly before the first diverging decision, the forked state equals what
// the mutant's own run would have reached (the executions are identical up
// to there), and the cloned trackers carry the prefix metrics. Tests assert
// byte-identical Results against DisablePrefixCache for every worker count.
//
// Window mutants (rate surgery over [from, to)) share the same trunk: their
// schedule agrees with the parent's on [0, from), so everything before the
// first event at/after `from` is byte-identical to the parent's run. The
// scheduler forks the trunk at exactly that moment — Engine.NextEventTime
// tells it when, without dispatching anything — and swaps the mutated
// schedule into the fork (Engine.SwapSchedule), which re-derives queued
// timer times from their hardware targets through the new schedule; the
// cloned skew tracker swaps alongside. Whole-run rate mutants and seeds
// change hardware schedules from time zero, so they share no prefix and
// evaluate from scratch on the same worker pool.
//
// Stateful tail adversaries (engine.StatefulAdversary) are fork-safe: every
// trunk and every from-scratch evaluation runs against an independent clone
// of the Base's initial state, and a fork inherits Engine.Fork's clone of
// the trunk tail's state at the fork point — exactly the state a full
// re-simulation of that candidate would have reached there, preserving the
// byte-identical-to-resim guarantee. A stateful Base that cannot be cloned
// is never forked or shared across workers: normalize degrades the whole
// search to serial full re-simulation on the one shared instance — state
// carrying across evaluations in candidate order — and says exactly that in
// Result.Notes.
package search

import (
	"sort"
	"sync"

	"gcs/internal/core"
	"gcs/internal/engine"
)

// evalAll evaluates every candidate on a bounded worker pool and returns the
// evaluations (indexed by candidate position, so no scheduling
// nondeterminism can leak into the reduction) plus the number of engine
// events actually dispatched — trunk replays included.
func evalAll(opt Options, cands []candidate) ([]evaluation, uint64) {
	results := make([]evaluation, len(cands))

	// Serial fallback (stateful, non-cloneable Base): the single shared tail
	// instance must see one run at a time, in candidate-index order, so the
	// outcome is at least deterministic in Options. Its state carries from
	// each run into the next — see the Options.Base doc and the note
	// normalize records.
	if opt.serialEval {
		var dispatched uint64
		for i := range cands {
			results[i] = evaluate(opt, cands[i])
			dispatched += results[i].cost
		}
		return results, dispatched
	}

	// Partition: delay mutants group by parent log, everything else is
	// from-scratch work.
	var scratch []int
	groups := make(map[*DecisionLog][]int)
	var order []*DecisionLog
	for i, c := range cands {
		if opt.DisablePrefixCache || c.parent == nil {
			scratch = append(scratch, i)
			continue
		}
		if _, ok := groups[c.parent]; !ok {
			order = append(order, c.parent)
		}
		groups[c.parent] = append(groups[c.parent], i)
	}

	sem := make(chan struct{}, opt.Workers)
	var wg sync.WaitGroup
	spawn := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			f()
		}()
	}

	for _, i := range scratch {
		i := i
		spawn(func() { results[i] = evaluate(opt, cands[i]) })
	}
	trunkSteps := make([]uint64, len(order))
	for gi, plog := range order {
		gi, plog := gi, plog
		idxs := append([]int(nil), groups[plog]...)
		// Divergence order: the trunk only ever steps forward.
		sort.Slice(idxs, func(a, b int) bool {
			if cands[idxs[a]].divEvent != cands[idxs[b]].divEvent {
				return cands[idxs[a]].divEvent < cands[idxs[b]].divEvent
			}
			return idxs[a] < idxs[b]
		})
		spawn(func() { trunkSteps[gi] = runTrunk(opt, cands, idxs, plog, results, spawn) })
	}
	wg.Wait()

	var dispatched uint64
	for _, ev := range results {
		dispatched += ev.cost
	}
	for _, s := range trunkSteps {
		dispatched += s
	}
	return results, dispatched
}

// runTrunk replays one parent's execution and forks a suffix evaluation for
// each of its delay and window mutants, in divergence order. Delay mutants
// fork just before their diverging event; window mutants fork at the first
// event at/after their mutated window's start, with the mutated schedule
// swapped into the fork (and into the cloned tracker). Both orderings are
// monotone, so the trunk only ever steps forward and is replayed at most
// once per parent. It returns the number of events the trunk itself
// dispatched.
func runTrunk(opt Options, cands []candidate, idxs []int, plog *DecisionLog, results []evaluation, spawn func(func())) uint64 {
	var delays, wins []int
	for _, i := range idxs {
		if cands[i].swapSched != nil {
			wins = append(wins, i)
		} else {
			delays = append(delays, i)
		}
	}
	sort.Slice(delays, func(a, b int) bool {
		if cands[delays[a]].divEvent != cands[delays[b]].divEvent {
			return cands[delays[a]].divEvent < cands[delays[b]].divEvent
		}
		return delays[a] < delays[b]
	})
	sort.Slice(wins, func(a, b int) bool {
		if c := cands[wins[a]].divTime.Cmp(cands[wins[b]].divTime); c != 0 {
			return c < 0
		}
		return wins[a] < wins[b]
	})
	di, wi := 0, 0
	failRest := func(err error) {
		for _, i := range delays[di:] {
			results[i] = evaluation{cand: cands[i], err: err}
		}
		for _, i := range wins[wi:] {
			results[i] = evaluation{cand: cands[i], err: err}
		}
	}
	scheds := trunkScheds(opt, cands[idxs[0]])
	skew, err := core.NewSkewTracker(opt.Net, scheds)
	if err != nil {
		failRest(err)
		return 0
	}
	log := NewDecisionLog(opt.Net)
	trunk, err := engine.New(opt.Net,
		engine.WithProtocol(opt.Protocol),
		engine.WithAdversary(engine.ScriptedAdversary{Delays: plog.Script(), Fallback: baseTail(opt)}),
		engine.WithSchedules(scheds),
		engine.WithRho(opt.Rho),
		engine.WithObservers(skew, log),
		engine.WithMetrics(opt.EngineMetrics),
	)
	if err != nil {
		failRest(err)
		return 0
	}
	// dispatchFork branches candidate i off the trunk's current state and
	// spawns its suffix evaluation. The fork's adversary is Fork's own clone
	// of the trunk's scripted adversary — its tail carries the decision state
	// accumulated over the shared prefix. Rebind the mutant's script over
	// that tail, not over a pristine Base: a full re-simulation of this
	// candidate would have evolved the very same tail state by this event.
	// A window mutant additionally swaps its mutated schedule into the fork
	// and the cloned tracker — re-deriving queued timer times from their
	// hardware targets — before anything of the suffix runs.
	dispatchFork := func(i int) {
		c := cands[i]
		fork, err := trunk.Fork()
		if err != nil {
			results[i] = evaluation{cand: c, err: err}
			return
		}
		fskew := skew.Clone()
		if c.swapSched != nil {
			if err := fork.SwapSchedule(c.swapNode, c.swapSched); err != nil {
				results[i] = evaluation{cand: c, err: err}
				return
			}
			if err := fskew.SwapSchedule(c.swapNode, c.swapSched); err != nil {
				results[i] = evaluation{cand: c, err: err}
				return
			}
		}
		tail := baseTail(opt)
		if sc, ok := fork.Adversary().(engine.ScriptedAdversary); ok && sc.Fallback != nil {
			tail = sc.Fallback
		}
		if err := fork.SetAdversary(engine.ScriptedAdversary{Delays: c.script, Fallback: tail}); err != nil {
			results[i] = evaluation{cand: c, err: err}
			return
		}
		flog := log.Clone()
		fork.Observe(fskew, flog)
		prefix := fork.Steps()
		spawn(func() { results[i] = finish(opt, c, fork, fskew, flog, prefix) })
	}
	for di < len(delays) || wi < len(wins) {
		// Fork every window mutant whose divergence has arrived: the next
		// pending event is at/after its window start (or the queue is idle),
		// so nothing of its diverging suffix has been dispatched yet.
		for wi < len(wins) {
			if nt, ok := trunk.NextEventTime(); ok && nt.Less(cands[wins[wi]].divTime) {
				break
			}
			dispatchFork(wins[wi])
			wi++
		}
		// Fork every delay mutant positioned just before its diverging event.
		for di < len(delays) {
			target := cands[delays[di]].divEvent
			if target > 0 {
				target-- // replay everything before the diverging event
			}
			if trunk.Steps() < target && trunk.Pending() > 0 {
				break
			}
			dispatchFork(delays[di])
			di++
		}
		if di >= len(delays) && wi >= len(wins) {
			break
		}
		ok, err := trunk.Step()
		if err != nil {
			failRest(err)
			return trunk.Steps()
		}
		if err := skew.Err(); err != nil {
			failRest(err)
			return trunk.Steps()
		}
		if !ok {
			// Parent queue drained early: every remaining mutant forks from
			// the idle state.
			for ; wi < len(wins); wi++ {
				dispatchFork(wins[wi])
			}
			for ; di < len(delays); di++ {
				dispatchFork(delays[di])
			}
		}
	}
	return trunk.Steps()
}

// finish drives a forked engine to the horizon and reads the objective off
// its cloned tracker — the suffix half of an evaluation. prefix is the event
// count inherited from the trunk, excluded from the evaluation's own cost.
func finish(opt Options, cand candidate, eng *engine.Engine, skew *core.SkewTracker, log *DecisionLog, prefix uint64) evaluation {
	ev := evaluation{cand: cand}
	if err := eng.RunUntil(opt.Duration); err != nil {
		ev.err = err
		return ev
	}
	if err := skew.Err(); err != nil {
		ev.err = err
		return ev
	}
	ev.log = log
	ev.steps = eng.Steps()
	ev.cost = eng.Steps() - prefix
	ev.value, ev.witness = objectiveValue(opt, skew)
	return ev
}

// evaluate re-simulates one candidate from scratch and reads the objective
// off the online trackers.
func evaluate(opt Options, cand candidate) evaluation {
	scheds := effectiveScheds(opt, cand)
	skew, err := core.NewSkewTracker(opt.Net, scheds)
	if err != nil {
		return evaluation{cand: cand, err: err}
	}
	log := NewDecisionLog(opt.Net)
	adv := engine.ScriptedAdversary{Delays: cand.script, Fallback: baseTail(opt)}
	eng, err := engine.New(opt.Net,
		engine.WithProtocol(opt.Protocol),
		engine.WithAdversary(adv),
		engine.WithSchedules(scheds),
		engine.WithRho(opt.Rho),
		engine.WithObservers(skew, log),
		engine.WithMetrics(opt.EngineMetrics),
	)
	if err != nil {
		return evaluation{cand: cand, err: err}
	}
	return finish(opt, cand, eng, skew, log, 0)
}
