package gcs_test

// Runnable documentation: each example is deterministic and verified by
// `go test`.

import (
	"fmt"

	"gcs"
)

// ExampleRun shows the minimal simulate-and-measure loop.
func ExampleRun() {
	net, _ := gcs.Line(5)
	exec, err := gcs.Run(gcs.Config{
		Net:       net,
		Schedules: gcs.ConstantSchedules(5, gcs.R(1)),
		Adversary: gcs.Midpoint(),
		Protocol:  gcs.MaxGossip(gcs.R(1)),
		Duration:  gcs.R(10),
		Rho:       gcs.Frac(1, 2),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("validity:", gcs.CheckValidity(exec) == nil)
	fmt.Println("global skew:", gcs.GlobalSkew(exec).Skew)
	// Output:
	// validity: true
	// global skew: 0
}

// ExampleSkewProfile measures the empirical gradient f̂(d) under drift.
func ExampleSkewProfile() {
	net, _ := gcs.Line(5)
	scheds := gcs.ConstantSchedules(5, gcs.R(1))
	scheds[0] = gcs.ConstantClock(gcs.Frac(5, 4)) // node 0 drifts fast
	exec, _ := gcs.Run(gcs.Config{
		Net:       net,
		Schedules: scheds,
		Adversary: gcs.Midpoint(),
		Protocol:  gcs.Null(),
		Duration:  gcs.R(8),
		Rho:       gcs.Frac(1, 2),
	})
	for _, p := range gcs.SkewProfile(exec) {
		fmt.Printf("f̂(%s) = %s\n", p.Dist, p.MaxSkew)
	}
	// Output:
	// f̂(1) = 2
	// f̂(2) = 2
	// f̂(3) = 2
	// f̂(4) = 2
}

// ExampleMainTheorem runs the Theorem 8.1 construction at a small size.
func ExampleMainTheorem() {
	res, err := gcs.MainTheorem(gcs.MainTheoremInput{
		Protocol: gcs.MaxGossip(gcs.R(1)),
		Params:   gcs.DefaultLowerBoundParams(),
		Branch:   2,
		Rounds:   2,
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("nodes:", res.D)
	fmt.Println("rounds:", len(res.Rounds))
	fmt.Println("adjacent skew ≥ target:", res.AdjacentSkew.GreaterEq(res.PaperTarget))
	// Output:
	// nodes: 5
	// rounds: 2
	// adjacent skew ≥ target: true
}

// ExampleCounterexample reproduces the §2 gradient violation.
func ExampleCounterexample() {
	res, err := gcs.Counterexample(gcs.CounterexampleInput{
		Protocol: gcs.MaxGossip(gcs.R(1)),
		Dc:       gcs.R(8),
		SwitchAt: gcs.R(40),
		Duration: gcs.R(48),
		Params:   gcs.DefaultLowerBoundParams(),
	})
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("distance-1 peak:", res.PeakYZ.Val)
	// Output:
	// distance-1 peak: 51/5
}
