// Sensor data fusion (§1 of the paper): sensors aggregate timestamped
// readings up a fusion tree; children of a common parent must be closely
// synchronized for their readings to fuse consistently, while distant
// subtrees never compare timestamps — exactly the gradient property.
//
//	go run ./examples/sensorfusion
package main

import (
	"fmt"
	"log"

	"gcs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 15 // a full binary tree over a 15-node line
	net, err := gcs.Line(n)
	if err != nil {
		return err
	}
	rho := gcs.Frac(1, 2)
	scheds := gcs.ConstantSchedules(n, gcs.R(1))
	scheds[0] = gcs.ConstantClock(gcs.R(1).Add(rho.Div(gcs.R(2))))

	parent := gcs.BinaryFusionTree(n)
	fmt.Println("fusion tree (node: parent):", parent)

	for _, proto := range []gcs.Protocol{
		gcs.Null(),
		gcs.MaxGossip(gcs.R(1)),
		gcs.Gradient(gcs.DefaultGradientParams()),
	} {
		exec, err := gcs.Run(gcs.Config{
			Net:       net,
			Schedules: scheds,
			Adversary: gcs.HashAdversary{Seed: 7, Denom: 8},
			Protocol:  proto,
			Duration:  gcs.R(60),
			Rho:       rho,
		})
		if err != nil {
			return err
		}
		rep, err := gcs.FusionConsistency(exec, parent)
		if err != nil {
			return err
		}
		fmt.Printf("%-12s worst sibling skew %-8s (parent %d, children %v)  global %s\n",
			proto.Name(), rep.Worst.MaxSkew, rep.Worst.Parent, rep.Worst.Children, rep.GlobalSkew)
	}
	fmt.Println("\nFusion consistency depends on *sibling* skew, not global skew:")
	fmt.Println("a gradient algorithm keeps siblings aligned even when far ends of")
	fmt.Println("the network drift apart.")
	return nil
}
