// Target tracking (§1 of the paper): two sensors timestamp an object
// crossing and estimate its speed as v = d/Δt. Clock skew corrupts Δt; the
// farther apart the sensors, the larger Δt and the more skew is tolerable
// for the same relative error — so the acceptable skew forms a gradient in
// distance.
//
//	go run ./examples/targettracking
package main

import (
	"fmt"
	"log"

	"gcs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 17
	net, err := gcs.Line(n)
	if err != nil {
		return err
	}
	rho := gcs.Frac(1, 2)
	scheds := gcs.ConstantSchedules(n, gcs.R(1))
	scheds[0] = gcs.ConstantClock(gcs.R(1).Add(rho.Div(gcs.R(2))))

	for _, proto := range []gcs.Protocol{
		gcs.MaxGossip(gcs.R(1)),
		gcs.Gradient(gcs.DefaultGradientParams()),
	} {
		exec, err := gcs.Run(gcs.Config{
			Net:       net,
			Schedules: scheds,
			Adversary: gcs.HashAdversary{Seed: 13, Denom: 8},
			Protocol:  proto,
			Duration:  gcs.R(80),
			Rho:       rho,
		})
		if err != nil {
			return err
		}
		fmt.Printf("%s:\n", proto.Name())
		for _, d := range []int{1, 2, 4, 8, 16} {
			rep, err := gcs.Tracking(exec, gcs.TrackingConfig{
				I:       0,
				J:       d,
				CrossAt: gcs.R(40),
				Speed:   gcs.Frac(1, 2),
			})
			if err != nil {
				return err
			}
			fmt.Printf("  sensors (0,%2d)  true Δt=%-5s measured Δt=%-8s est speed=%-8s err=%.1f%%\n",
				d, rep.TrueDT, rep.MeasuredDT, rep.EstSpeed, rep.ErrPct)
		}
	}
	fmt.Println("\nFor a fixed skew budget the velocity error shrinks with distance;")
	fmt.Println("equivalently, nearby sensors need the tightest synchronization.")
	return nil
}
