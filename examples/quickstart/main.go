// Quickstart: stream two clock synchronization algorithms on a drifting
// line and compare their skew gradients with online trackers — no trace is
// recorded, so the same program scales to lines far longer than memory
// would allow under the batch API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gcs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 17
	net, err := gcs.Line(n)
	if err != nil {
		return err
	}

	// Every node at rate 1 except node 0, which drifts fast (1 + ρ/2).
	rho := gcs.Frac(1, 2)
	scheds := gcs.ConstantSchedules(n, gcs.R(1))
	scheds[0] = gcs.ConstantClock(gcs.R(1).Add(rho.Div(gcs.R(2))))

	for _, proto := range []gcs.Protocol{
		gcs.MaxGossip(gcs.R(1)), // the paper's §2 strawman (Srikanth–Toueg style)
		gcs.Gradient(gcs.DefaultGradientParams()),
	} {
		// Online trackers subscribe to the engine's event stream and
		// maintain the running metrics; nothing is buffered.
		skew, err := gcs.NewSkewTracker(net, scheds)
		if err != nil {
			return err
		}
		valid := gcs.NewValidityTracker(scheds)
		eng, err := gcs.NewEngine(net,
			gcs.WithProtocol(proto),
			gcs.WithAdversary(gcs.HashAdversary{Seed: 42, Denom: 8}),
			gcs.WithSchedules(scheds),
			gcs.WithRho(rho),
			gcs.WithObservers(skew, valid),
		)
		if err != nil {
			return err
		}
		// Drive the run in two phases — the engine is incremental, so we
		// can peek at the halfway metrics before extending the horizon.
		if err := eng.RunUntil(gcs.R(30)); err != nil {
			return err
		}
		half := skew.Global().Skew
		if err := eng.RunFor(gcs.R(30)); err != nil {
			return err
		}
		if err := valid.Err(); err != nil {
			return fmt.Errorf("%s: %w", proto.Name(), err)
		}
		global := skew.Global()
		local := skew.Local()
		fmt.Printf("%-12s global skew %-8s (halfway %-8s) local skew %-8s (gradient ratio %.2f)\n",
			proto.Name(), global.Skew, half, local.Skew,
			local.Skew.Float64()/global.Skew.Float64())
		fmt.Printf("%-12s empirical f̂(d):", "")
		for _, pt := range skew.Profile() {
			fmt.Printf(" f̂(%s)=%s", pt.Dist, pt.MaxSkew)
		}
		fmt.Println()
	}
	fmt.Println("\nThe gradient algorithm keeps nearby nodes much closer than the")
	fmt.Println("max-based one relative to the global skew — the property the paper")
	fmt.Println("defines, and proves no algorithm can push below Ω(d + log D / log log D).")
	fmt.Println("\n(For the batch API — record everything, check post hoc — see gcs.Run")
	fmt.Println("in the package Quickstart; the recorded and streamed metrics agree")
	fmt.Println("exactly.)")
	return nil
}
