// Quickstart: run two clock synchronization algorithms on a drifting line
// and compare their skew gradients.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"gcs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const n = 17
	net, err := gcs.Line(n)
	if err != nil {
		return err
	}

	// Every node at rate 1 except node 0, which drifts fast (1 + ρ/2).
	rho := gcs.Frac(1, 2)
	scheds := gcs.ConstantSchedules(n, gcs.R(1))
	scheds[0] = gcs.ConstantClock(gcs.R(1).Add(rho.Div(gcs.R(2))))

	for _, proto := range []gcs.Protocol{
		gcs.MaxGossip(gcs.R(1)), // the paper's §2 strawman (Srikanth–Toueg style)
		gcs.Gradient(gcs.DefaultGradientParams()),
	} {
		exec, err := gcs.Run(gcs.Config{
			Net:       net,
			Schedules: scheds,
			Adversary: gcs.HashAdversary{Seed: 42, Denom: 8},
			Protocol:  proto,
			Duration:  gcs.R(60),
			Rho:       rho,
		})
		if err != nil {
			return err
		}
		if err := gcs.CheckValidity(exec); err != nil {
			return fmt.Errorf("%s: %w", proto.Name(), err)
		}
		global := gcs.GlobalSkew(exec)
		local := gcs.LocalSkew(exec)
		fmt.Printf("%-12s global skew %-8s local skew %-8s (gradient ratio %.2f)\n",
			proto.Name(), global.Skew, local.Skew,
			local.Skew.Float64()/global.Skew.Float64())
		fmt.Printf("%-12s empirical f̂(d):", "")
		for _, pt := range gcs.SkewProfile(exec) {
			fmt.Printf(" f̂(%s)=%s", pt.Dist, pt.MaxSkew)
		}
		fmt.Println()
	}
	fmt.Println("\nThe gradient algorithm keeps nearby nodes much closer than the")
	fmt.Println("max-based one relative to the global skew — the property the paper")
	fmt.Println("defines, and proves no algorithm can push below Ω(d + log D / log log D).")
	return nil
}
