// Lower bounds, live: run the paper's adversarial constructions against a
// real algorithm and print the certificates.
//
//	go run ./examples/lowerbound
package main

import (
	"fmt"
	"log"

	"gcs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	p := gcs.DefaultLowerBoundParams()
	proto := gcs.MaxGossip(gcs.R(1))

	// 1. The folklore Ω(d) shift argument (§5, claim 1).
	fmt.Println("— Ω(d) shift argument —")
	for _, d := range []int64{2, 8, 32} {
		res, err := gcs.Shift(proto, gcs.R(d), p)
		if err != nil {
			return err
		}
		fmt.Printf("  d=%-3d skew(α)=%-6s skew(β)=%-6s  ⇒ f(%d) ≥ %s\n",
			d, res.SkewAlpha, res.SkewBeta, d, res.Implied)
	}

	// 2. Theorem 8.1: iterated Add Skew forces adjacent-pair skew.
	fmt.Println("\n— Theorem 8.1 construction (max-gossip) —")
	res, err := gcs.MainTheorem(gcs.MainTheoremInput{
		Protocol: proto,
		Params:   p,
		Branch:   4,
		Rounds:   3,
	})
	if err != nil {
		return err
	}
	fmt.Print(gcs.RenderRounds(res))

	// 3. The §2 counterexample: why max-based algorithms violate the
	// gradient property.
	fmt.Println("\n— §2 counterexample (distance-1 pair forced to Θ(D) skew) —")
	dc := gcs.R(32)
	switchAt := gcs.R(160)
	cex, err := gcs.Counterexample(gcs.CounterexampleInput{
		Protocol: proto,
		Dc:       dc,
		SwitchAt: switchAt,
		Duration: switchAt.Add(gcs.R(8)),
		Params:   p,
	})
	if err != nil {
		return err
	}
	fmt.Printf("  d(x,y)=%s, d(y,z)=1: pre-switch |L_y−L_z| ≤ %s, post-switch peak %s (%.2f·D)\n",
		dc, cex.PreSwitchYZ.Val, cex.PeakYZ.Val, cex.Ratio)
	fmt.Println()
	fmt.Print(gcs.Chart(
		"  the spike, drawn: skew between the distance-1 pair (y,z) over time",
		10,
		gcs.SkewTimeSeries(cex.Exec, 1, 2, 64),
	))
	return nil
}
