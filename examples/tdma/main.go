// TDMA scaling (§1 of the paper): nodes transmit in logical-clock-driven
// slots with a fixed guard band. Collisions appear exactly when same-slot
// interferers' skew exceeds the guard — and the paper's lower bound says
// local skew must grow with the network diameter, so fixed-granularity TDMA
// cannot scale forever.
//
//	go run ./examples/tdma
package main

import (
	"fmt"
	"log"

	"gcs"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rho := gcs.Frac(1, 2)
	// Two slots: on a line, nodes at distance 2 share a slot AND interfere,
	// so feasibility tracks distance-2 skew against the guard band.
	tdma := gcs.TDMAConfig{
		Slots:   2,
		SlotLen: gcs.R(8),
		Guard:   gcs.R(3),
	}
	fmt.Printf("TDMA: %d slots of %s with guard %s — feasible iff same-slot interferer skew ≤ guard\n\n",
		tdma.Slots, tdma.SlotLen, tdma.Guard)
	fmt.Printf("%-12s", "diameter:")
	diameters := []int{4, 8, 16, 32}
	for _, d := range diameters {
		fmt.Printf(" %6d", d)
	}
	fmt.Println()

	for _, mk := range []func() gcs.Protocol{
		func() gcs.Protocol { return gcs.Null() },
		func() gcs.Protocol { return gcs.MaxGossip(gcs.R(1)) },
		func() gcs.Protocol { return gcs.Gradient(gcs.DefaultGradientParams()) },
	} {
		proto := mk()
		fmt.Printf("%-12s", proto.Name()+":")
		for _, d := range diameters {
			n := d + 1
			net, err := gcs.Line(n)
			if err != nil {
				return err
			}
			scheds, err := gcs.DiverseSchedules(n, gcs.R(1), gcs.R(1).Add(rho.Div(gcs.R(2))), 4, 11)
			if err != nil {
				return err
			}
			exec, err := gcs.Run(gcs.Config{
				Net:       net,
				Schedules: scheds,
				Adversary: gcs.HashAdversary{Seed: 11, Denom: 8},
				Protocol:  proto,
				Duration:  gcs.R(48),
				Rho:       rho,
			})
			if err != nil {
				return err
			}
			ok, _, err := gcs.TDMAFeasible(exec, tdma)
			if err != nil {
				return err
			}
			verdict := "OK"
			if !ok {
				verdict = "FAIL"
			}
			fmt.Printf(" %6s", verdict)
		}
		fmt.Println()
	}
	fmt.Println("\nThe paper's implication: whatever the algorithm, the Ω(log D / log log D)")
	fmt.Println("lower bound on distance-1 skew means a fixed guard band must eventually")
	fmt.Println("fail as the diameter grows.")
	return nil
}
